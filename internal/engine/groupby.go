package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// Section VI: group-by algorithms.

// GroupAgg is one aggregation of a group-by query. Only SUM and COUNT can
// be pushed to S3 (they distribute over the CASE encoding); the local
// algorithms accept any aggregate.
type GroupAgg struct {
	Func sqlparse.AggFunc
	// Expr is the aggregated expression over the table's columns
	// (ignored for COUNT, which counts rows).
	Expr string
	// As names the output column.
	As string
}

func (a GroupAgg) itemSQL() string {
	switch a.Func {
	case sqlparse.AggCount:
		return "COUNT(*) AS " + a.As
	case sqlparse.AggSum:
		return "SUM(" + a.Expr + ") AS " + a.As
	case sqlparse.AggMin:
		return "MIN(" + a.Expr + ") AS " + a.As
	case sqlparse.AggMax:
		return "MAX(" + a.Expr + ") AS " + a.As
	case sqlparse.AggAvg:
		return "AVG(" + a.Expr + ") AS " + a.As
	}
	return ""
}

func groupItems(groupCol string, aggs []GroupAgg) string {
	parts := []string{groupCol}
	for _, a := range aggs {
		parts = append(parts, a.itemSQL())
	}
	return strings.Join(parts, ", ")
}

func groupResultCols(groupCol string, aggs []GroupAgg) []string {
	cols := []string{groupCol}
	for _, a := range aggs {
		cols = append(cols, a.As)
	}
	return cols
}

func checkPushableAggs(aggs []GroupAgg, algo string) error {
	for _, a := range aggs {
		if a.Func != sqlparse.AggSum && a.Func != sqlparse.AggCount {
			return fmt.Errorf("engine: %s supports only SUM/COUNT, got %s", algo, a.itemSQL())
		}
	}
	return nil
}

// ServerSideGroupBy loads the entire table, filters and groups locally
// (Fig. 5's baseline). filter may be empty.
func (e *Exec) ServerSideGroupBy(table, groupCol string, aggs []GroupAgg, filter string) (*Relation, error) {
	sp := e.beginSpan("server groupby " + table)
	defer sp.End()
	prev := e.setSpanParent(sp)
	defer e.restoreSpanParent(prev)
	stage := e.NextStage()
	rel, err := e.LoadTable("load "+table, stage, table)
	if err != nil {
		return nil, err
	}
	e.Metrics.Phase("load "+table, stage).AddServerRows(int64(len(rel.Rows)))
	rel, err = e.filterLocal(rel, filter, e.workers())
	if err != nil {
		return nil, err
	}
	return e.groupByLocal(rel, groupCol, groupItems(groupCol, aggs), e.workers())
}

// FilteredGroupBy pushes the projection of the referenced columns into S3
// Select (reducing returned bytes) and groups locally.
func (e *Exec) FilteredGroupBy(table, groupCol string, aggs []GroupAgg, filter string) (*Relation, error) {
	cols := projectColsForAggs(groupCol, aggs)
	sql := "SELECT " + strings.Join(cols, ", ") + " FROM S3Object"
	if filter != "" {
		sql += " WHERE " + filter
	}
	sp := e.beginSpan("filtered groupby " + table)
	defer sp.End()
	prev := e.setSpanParent(sp)
	defer e.restoreSpanParent(prev)
	stage := e.NextStage()
	rel, err := e.SelectRows("project "+table, stage, table, sql)
	if err != nil {
		return nil, err
	}
	e.Metrics.Phase("project "+table, stage).AddServerRows(int64(len(rel.Rows)))
	return e.groupByLocal(rel, groupCol, groupItems(groupCol, aggs), e.workers())
}

// groupEqPredicate renders the membership test for one discovered group
// value. CSV cannot distinguish NULL from the empty string, and the
// storage service sees empty fields as NULL, so the empty group value is
// matched with IS NULL.
func groupEqPredicate(groupCol, g string) string {
	if g == "" {
		return groupCol + " IS NULL"
	}
	return groupCol + " = " + sqlLiteral(g)
}

// caseItemsSQL builds the Listing-4 select list: one aggregated CASE per
// (group, aggregate) pair.
func caseItemsSQL(groupCol string, groups []string, aggs []GroupAgg) string {
	var items []string
	for _, g := range groups {
		pred := groupEqPredicate(groupCol, g)
		for _, a := range aggs {
			inner := a.Expr
			if a.Func == sqlparse.AggCount {
				inner = "1"
			}
			items = append(items, fmt.Sprintf(
				"SUM(CASE WHEN %s THEN %s ELSE 0 END)", pred, inner))
		}
	}
	return strings.Join(items, ", ")
}

// caseAggregate runs the Listing-4 query for the given groups and returns
// one relation row per group.
func (e *Exec) caseAggregate(phaseName string, stage int, table, groupCol string, groups []string, aggs []GroupAgg, filter string) (*Relation, error) {
	sql := "SELECT " + caseItemsSQL(groupCol, groups, aggs) + " FROM S3Object"
	if filter != "" {
		sql += " WHERE " + filter
	}
	if len(sql) > selectengine.MaxSQLBytes {
		return nil, fmt.Errorf("engine: S3-side group-by query for %d groups exceeds the %d-byte expression limit",
			len(groups), selectengine.MaxSQLBytes)
	}
	merge := make([]sqlparse.AggFunc, len(groups)*len(aggs))
	for i := range merge {
		merge[i] = sqlparse.AggSum
	}
	row, err := e.SelectAgg(phaseName, stage, table, sql, merge)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: groupResultCols(groupCol, aggs)}
	for gi, g := range groups {
		r := make(Row, 0, 1+len(aggs))
		r = append(r, value.FromCSV(g))
		for ai := range aggs {
			r = append(r, row[gi*len(aggs)+ai])
		}
		out.Rows = append(out.Rows, r)
	}
	return out, nil
}

// s3GroupValues runs phase 1 of the S3-side algorithm: project the group
// column, dedup on the server, and return the distinct values in first-seen
// order.
func (e *Exec) s3GroupValues(phaseName string, stage int, table, groupCol, filter string) ([]string, error) {
	sql := "SELECT " + groupCol + " FROM S3Object"
	if filter != "" {
		sql += " WHERE " + filter
	}
	rel, err := e.SelectRows(phaseName, stage, table, sql)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, r := range rel.Rows {
		s := r[0].String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out, nil
}

// S3SideGroupBy pushes the entire group-by to S3 (Section VI-A): phase 1
// discovers the distinct groups with a projection; phase 2 runs one
// SUM(CASE ...) per (group, aggregate) pair and merges partition results.
// Only SUM and COUNT aggregates are supported, as in the paper.
func (e *Exec) S3SideGroupBy(table, groupCol string, aggs []GroupAgg, filter string) (*Relation, error) {
	if err := checkPushableAggs(aggs, "S3-side group-by"); err != nil {
		return nil, err
	}
	stage1 := e.NextStage()
	groups, err := e.s3GroupValues("discover groups", stage1, table, groupCol, filter)
	if err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return &Relation{Cols: groupResultCols(groupCol, aggs)}, nil
	}
	stage2 := e.NextStage()
	return e.caseAggregate("s3 aggregate", stage2, table, groupCol, groups, aggs, filter)
}

// HybridGroupByOptions tunes Section VI-B.
type HybridGroupByOptions struct {
	// SampleFraction of each partition scanned in phase 1 (default 0.01,
	// the paper's "first 1% of data").
	SampleFraction float64
	// S3Groups is how many of the largest groups are aggregated in S3
	// (Fig. 6 finds 6-8 optimal; default 8).
	S3Groups int
	// UsePartialGroupBy pushes phase 2's large-group aggregation as a
	// real GROUP BY (Suggestion 4) instead of the CASE encoding. Requires
	// the DB capabilities to allow GROUP BY.
	UsePartialGroupBy bool
}

func (o HybridGroupByOptions) withDefaults() HybridGroupByOptions {
	if o.SampleFraction <= 0 {
		o.SampleFraction = 0.01
	}
	if o.S3Groups <= 0 {
		o.S3Groups = 8
	}
	return o
}

// HybridGroupBy implements Section VI-B: sample the head of each partition
// to find the populous groups, aggregate those in S3, and aggregate the
// long tail on the server. Only SUM/COUNT aggregates can be pushed.
func (e *Exec) HybridGroupBy(table, groupCol string, aggs []GroupAgg, opts HybridGroupByOptions) (*Relation, error) {
	opts = opts.withDefaults()
	if err := checkPushableAggs(aggs, "hybrid group-by"); err != nil {
		return nil, err
	}
	sp := e.beginSpan("hybrid groupby " + table)
	defer sp.End()
	prev := e.setSpanParent(sp)
	defer e.restoreSpanParent(prev)

	big, err := e.sampleTopGroups(table, groupCol, opts)
	if err != nil {
		return nil, err
	}

	// Phase 2: Q1 aggregates the big groups in S3; Q2 returns the tail
	// rows for local aggregation. Both run concurrently (same stage).
	stage2 := e.NextStage()
	var (
		bigRel  *Relation
		tailRel *Relation
	)
	errs := make(chan error, 2)
	go func() {
		if len(big) == 0 {
			bigRel = &Relation{Cols: groupResultCols(groupCol, aggs)}
			errs <- nil
			return
		}
		var err error
		if opts.UsePartialGroupBy {
			bigRel, err = e.partialGroupBy("s3 big groups", stage2, table, groupCol, big, aggs)
		} else {
			bigRel, err = e.caseAggregate("s3 big groups", stage2, table, groupCol, big, aggs, "")
		}
		errs <- err
	}()
	go func() {
		var err error
		where := ""
		if pred := tailPredicate(groupCol, big); pred != "" {
			where = " WHERE " + pred
		}
		cols := projectColsForAggs(groupCol, aggs)
		tailRel, err = e.SelectRows("tail scan", stage2, table,
			"SELECT "+strings.Join(cols, ", ")+" FROM S3Object"+where)
		errs <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}

	e.Metrics.Phase("tail scan", stage2).AddServerRows(int64(len(tailRel.Rows)))
	tail, err := e.groupByLocal(tailRel, groupCol, groupItems(groupCol, aggs), e.workers())
	if err != nil {
		return nil, err
	}

	out := &Relation{Cols: groupResultCols(groupCol, aggs)}
	out.Rows = append(out.Rows, bigRel.Rows...)
	out.Rows = append(out.Rows, tail.Rows...)
	return out, nil
}

// sampleTopGroups is phase 1 of hybrid group-by: scan the first
// SampleFraction of each partition and rank groups by sampled frequency.
func (e *Exec) sampleTopGroups(table, groupCol string, opts HybridGroupByOptions) ([]string, error) {
	stage1 := e.NextStage()
	keys, err := e.parts(table)
	if err != nil {
		return nil, err
	}
	backendName, backend := e.db.BackendFor(table)
	caps := backend.Capabilities()
	sp := e.beginSpan("sample " + table)
	phase1 := e.tablePhase("sample", stage1, table)
	defer func() { e.endPhaseSpan(sp, phase1) }()
	counts := map[string]int64{}
	var mu sync.Mutex
	err = e.forEachPart(keys, func(ctx context.Context, i int, key string) error {
		size, err := backend.Size(ctx, e.db.bucket, key)
		if err != nil {
			return err
		}
		end := int64(float64(size) * opts.SampleFraction)
		if end < 1 {
			end = 1
		}
		psp := sp.Child("select " + key)
		defer psp.End()
		res, err := e.doSelect(ctx, phase1, psp, backendName, backend, key, selectengine.Request{
			SQL:          "SELECT " + groupCol + " FROM S3Object",
			HasHeader:    true,
			Capabilities: caps,
			ScanRange:    &selectengine.ScanRange{Start: 0, End: end},
		})
		if err != nil {
			return err
		}
		mu.Lock()
		for _, r := range res.Rows {
			counts[r[0]]++
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	type gc struct {
		g string
		n int64
	}
	ranked := make([]gc, 0, len(counts))
	for g, n := range counts {
		ranked = append(ranked, gc{g, n})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].n != ranked[b].n {
			return ranked[a].n > ranked[b].n
		}
		return ranked[a].g < ranked[b].g
	})
	big := make([]string, 0, opts.S3Groups)
	for i := 0; i < len(ranked) && i < opts.S3Groups; i++ {
		big = append(big, ranked[i].g)
	}
	return big, nil
}

// tailPredicate renders the hybrid tail scan's WHERE clause: every row
// whose group is not among the big (S3-aggregated) groups. NOT IN alone
// would also drop NULL-group rows (the comparison evaluates to NULL), so
// the predicate handles the NULL group explicitly on whichever side of
// the split it belongs to.
func tailPredicate(groupCol string, big []string) string {
	if len(big) == 0 {
		return ""
	}
	bigHasNull := false
	var lits []string
	for _, g := range big {
		if g == "" {
			bigHasNull = true
			continue
		}
		lits = append(lits, sqlLiteral(g))
	}
	notIn := groupCol + " NOT IN (" + strings.Join(lits, ", ") + ")"
	switch {
	case len(lits) == 0: // big is just the NULL group
		return groupCol + " IS NOT NULL"
	case bigHasNull:
		return groupCol + " IS NOT NULL AND " + notIn
	default:
		return groupCol + " IS NULL OR " + notIn
	}
}

// partialGroupBy is the Suggestion-4 path: ship a real GROUP BY restricted
// to the given groups, then merge the per-partition partial results.
func (e *Exec) partialGroupBy(phaseName string, stage int, table, groupCol string, groups []string, aggs []GroupAgg) (*Relation, error) {
	groupsHaveNull := false
	var lits []string
	for _, g := range groups {
		if g == "" {
			groupsHaveNull = true
			continue
		}
		lits = append(lits, sqlLiteral(g))
	}
	pred := groupCol + " IN (" + strings.Join(lits, ", ") + ")"
	switch {
	case len(lits) == 0:
		pred = groupCol + " IS NULL"
	case groupsHaveNull:
		pred = groupCol + " IS NULL OR " + pred
	}
	sql := "SELECT " + groupItems(groupCol, aggs) + " FROM S3Object WHERE " +
		pred + " GROUP BY " + groupCol
	partials, err := e.SelectRows(phaseName, stage, table, sql)
	if err != nil {
		return nil, err
	}
	// Merge partition partials: SUM/COUNT partials both merge by SUM.
	mergeParts := []string{groupCol}
	for _, a := range aggs {
		mergeParts = append(mergeParts, "SUM("+a.As+") AS "+a.As)
	}
	return e.groupByLocal(partials, groupCol, strings.Join(mergeParts, ", "), e.workers())
}

func projectColsForAggs(groupCol string, aggs []GroupAgg) []string {
	cols := []string{groupCol}
	seen := map[string]bool{strings.ToLower(groupCol): true}
	for _, a := range aggs {
		if a.Expr == "" {
			continue
		}
		ex, err := sqlparse.ParseExpr(a.Expr)
		if err != nil {
			continue
		}
		for _, c := range sqlparse.Columns(ex) {
			if !seen[strings.ToLower(c)] {
				seen[strings.ToLower(c)] = true
				cols = append(cols, c)
			}
		}
	}
	return cols
}
