package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/store"
)

// --- ORDER BY over a column the projection drops (query.go finishLocal) ---

func TestOrderByColumnDroppedByProjection(t *testing.T) {
	st := store.New()
	rows := [][]string{
		{"carol", "41", "9.5"},
		{"alice", "23", "1.5"},
		{"bob", "35", "4.0"},
		{"dave", "19", "2.5"},
	}
	if err := PartitionTable(context.Background(), st, testBucket, "people", []string{"name", "age", "score"}, rows, 2); err != nil {
		t.Fatal(err)
	}
	db := openTestDB(t, st)

	// The projection drops age, but ORDER BY references it; the scan
	// pushed age down, and the sort must run before the projection.
	rel, _, err := db.Query("SELECT name FROM people ORDER BY age")
	if err != nil {
		t.Fatalf("ORDER BY on a non-projected column: %v", err)
	}
	var got []string
	for _, r := range rel.Rows {
		got = append(got, r[0].String())
	}
	want := []string{"dave", "alice", "bob", "carol"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if len(rel.Cols) != 1 || rel.Cols[0] != "name" {
		t.Fatalf("cols = %v, want [name]", rel.Cols)
	}

	// DESC and a computed sort key, still dropped by the projection.
	rel, _, err = db.Query("SELECT name FROM people ORDER BY score * 2 DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 || rel.Rows[0][0].String() != "carol" || rel.Rows[1][0].String() != "bob" {
		t.Fatalf("rows = %v", rel.Rows)
	}

	// Aliases still resolve: ORDER BY names a select-list alias whose
	// underlying expression is evaluated over the scan.
	rel, _, err = db.Query("SELECT age * 2 AS dbl FROM people ORDER BY dbl DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if mustInt(rel.Rows[0][0]) != 82 {
		t.Fatalf("alias order result = %v", rel.Rows)
	}

	// Aliases nested inside a larger ORDER BY expression substitute too.
	rel, _, err = db.Query("SELECT age * 2 AS dbl FROM people ORDER BY dbl + 1 DESC LIMIT 2")
	if err != nil {
		t.Fatalf("alias inside ORDER BY expression: %v", err)
	}
	if mustInt(rel.Rows[0][0]) != 82 || mustInt(rel.Rows[1][0]) != 70 {
		t.Fatalf("nested alias order result = %v", rel.Rows)
	}

	// Same shape through the GROUP BY path: the sort key is a group-by
	// column the select list drops, carried through the grouping as a
	// hidden item.
	rel, _, err = db.Query("SELECT COUNT(*) AS n FROM people GROUP BY name ORDER BY name DESC LIMIT 2")
	if err != nil {
		t.Fatalf("grouped ORDER BY on a dropped group column: %v", err)
	}
	if len(rel.Cols) != 1 || rel.Cols[0] != "n" || len(rel.Rows) != 2 {
		t.Fatalf("grouped result = %v %v", rel.Cols, rel.Rows)
	}

	// And ordering a grouped query by an aggregate that is not in the
	// select list.
	rel, _, err = db.Query("SELECT name FROM people GROUP BY name ORDER BY SUM(score) DESC LIMIT 1")
	if err != nil {
		t.Fatalf("grouped ORDER BY on a hidden aggregate: %v", err)
	}
	if rel.Rows[0][0].String() != "carol" {
		t.Fatalf("top scorer = %v, want carol", rel.Rows[0][0])
	}
}

// --- sqlLiteral canonical round-trip (db.go) ---

func TestSQLLiteralRoundTrip(t *testing.T) {
	cases := map[string]string{
		"501":    "501",      // canonical int: bare
		"-5":     "-5",       // sign round-trips
		"1.5":    "1.5",      // canonical float: bare
		"00501":  "'00501'",  // leading zeros would re-render as 501
		"1e3":    "'1e3'",    // scientific notation does not round-trip via 'f'
		"NaN":    "'NaN'",    // parses as a float but would be read as an identifier
		"+Inf":   "'+Inf'",   // same
		"Inf":    "'Inf'",    // same
		"0x1p-2": "'0x1p-2'", // hex float literal
		"":       "''",
		"ok":     "'ok'",
		"it's":   "'it''s'",
	}
	for in, want := range cases {
		if got := sqlLiteral(in); got != want {
			t.Errorf("sqlLiteral(%q) = %s, want %s", in, got, want)
		}
	}
}

// newGroupValueDB builds a table whose group column contains values that
// parse as numbers without round-tripping ("NaN", zip-style "00501") plus
// NULLs, so the pushed-down CASE / NOT IN encodings must quote and
// NULL-handle correctly.
func newGroupValueDB(t *testing.T, vals []string) *DB {
	t.Helper()
	st := store.New()
	var rows [][]string
	for i := 0; i < 240; i++ {
		rows = append(rows, []string{vals[i%len(vals)], fmt.Sprint(i % 10)})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "zips", []string{"zip", "v"}, rows, 3); err != nil {
		t.Fatal(err)
	}
	return openTestDB(t, st)
}

// newGroupValueDBCaps is newGroupValueDB with select capabilities on the
// backend.
func newGroupValueDBCaps(t *testing.T, vals []string, caps selectengine.Capabilities) *DB {
	t.Helper()
	st := store.New()
	var rows [][]string
	for i := 0; i < 240; i++ {
		rows = append(rows, []string{vals[i%len(vals)], fmt.Sprint(i % 10)})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "zips", []string{"zip", "v"}, rows, 3); err != nil {
		t.Fatal(err)
	}
	return openTestDB(t, st, s3api.WithCapabilities(caps))
}

func zipAggs() []GroupAgg {
	return []GroupAgg{
		{Func: sqlparse.AggSum, Expr: "v", As: "s"},
		{Func: sqlparse.AggCount, As: "n"},
	}
}

// TestGroupByNonCanonicalNumericGroups: "NaN" parses as a float, so the
// old sqlLiteral emitted it bare and the pushed CASE read it as a column
// reference; "00501" re-rendered as 501 and stopped matching the stored
// text. Both must aggregate identically to the server-side reference.
func TestGroupByNonCanonicalNumericGroups(t *testing.T) {
	db := newGroupValueDB(t, []string{"NaN", "00501", "10001", "battery park"})
	want, err := db.NewExec().ServerSideGroupBy("zips", "zip", zipAggs(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 4 {
		t.Fatalf("reference groups = %d, want 4", len(want.Rows))
	}
	s3side, err := db.NewExec().S3SideGroupBy("zips", "zip", zipAggs(), "")
	if err != nil {
		t.Fatalf("S3-side group-by over NaN/zip-style values: %v", err)
	}
	sameRows(t, "s3side", want, s3side)
	hybrid, err := db.NewExec().HybridGroupBy("zips", "zip", zipAggs(),
		HybridGroupByOptions{S3Groups: 2, SampleFraction: 0.2})
	if err != nil {
		t.Fatalf("hybrid group-by over NaN/zip-style values: %v", err)
	}
	sameRows(t, "hybrid", want, hybrid)
}

// TestGroupByNullGroups: rows whose group value is NULL (empty CSV field)
// must survive the S3-side CASE encoding and the hybrid NOT IN tail scan
// — a bare NOT IN drops them because the comparison evaluates to NULL.
func TestGroupByNullGroups(t *testing.T) {
	db := newGroupValueDB(t, []string{"", "10001", "10002", "10003", ""})
	want, err := db.NewExec().ServerSideGroupBy("zips", "zip", zipAggs(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 4 {
		t.Fatalf("reference groups = %d (NULL group must be one of them)", len(want.Rows))
	}
	s3side, err := db.NewExec().S3SideGroupBy("zips", "zip", zipAggs(), "")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "s3side", want, s3side)

	// The NULL group is the most frequent value, so with S3Groups=1 it is
	// aggregated in S3 and the tail must exclude exactly it; with a larger
	// budget it can land on either side of the split.
	for _, s3groups := range []int{1, 2, 8} {
		hybrid, err := db.NewExec().HybridGroupBy("zips", "zip", zipAggs(),
			HybridGroupByOptions{S3Groups: s3groups, SampleFraction: 0.5})
		if err != nil {
			t.Fatalf("hybrid S3Groups=%d: %v", s3groups, err)
		}
		sameRows(t, fmt.Sprintf("hybrid S3Groups=%d", s3groups), want, hybrid)
	}

	// Suggestion-4 partial group-by path, same NULL-group requirement,
	// against a backend advertising the capability.
	db = newGroupValueDBCaps(t, []string{"", "10001", "10002", "10003", ""},
		selectengine.Capabilities{AllowGroupBy: true})
	partial, err := db.NewExec().HybridGroupBy("zips", "zip", zipAggs(),
		HybridGroupByOptions{S3Groups: 2, SampleFraction: 0.5, UsePartialGroupBy: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "partial", want, partial)
}

// --- BloomJoin stage attribution (join.go) ---

// stageStealingBackend allocates a stage on the Exec after every Select,
// simulating concurrent operator work on the same query execution.
type stageStealingBackend struct {
	s3api.Backend
	e *Exec
}

func (c *stageStealingBackend) Select(ctx context.Context, bucket, key string, req selectengine.Request) (*selectengine.Result, error) {
	res, err := c.Backend.Select(ctx, bucket, key, req)
	if c.e != nil {
		c.e.NextStage()
	}
	return res, err
}

// TestBloomJoinStageUnderConcurrentStages: the final hash join of a Bloom
// join must land in the probe scan's stage even when concurrent work
// allocates stages on the same Exec mid-join (the old stageNow() read
// "latest stage - 1" and misattributed it).
func TestBloomJoinStageUnderConcurrentStages(t *testing.T) {
	st := newTestStore(t)
	stealer := &stageStealingBackend{Backend: s3api.NewInProc(st)}
	db, err := Open(testBucket, WithBackend("stealer", stealer))
	if err != nil {
		t.Fatal(err)
	}
	e := db.NewExec()
	stealer.e = e
	_, err = e.BloomJoin(JoinSpec{
		LeftTable: "cust", RightTable: "ords",
		LeftKey: "ck", RightKey: "ck",
		LeftFilter: "bal <= 0",
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	probeStage, ok := e.Metrics.StageOf("bloom probe")
	if !ok {
		t.Fatal("no bloom probe phase recorded")
	}
	joinStage, ok := e.Metrics.StageOf("hash join")
	if !ok {
		t.Fatal("no hash join phase recorded")
	}
	if joinStage != probeStage {
		t.Errorf("hash join attributed to stage %d, want the probe's stage %d", joinStage, probeStage)
	}
}
