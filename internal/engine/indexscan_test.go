package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/index"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

// idxScale is the simulation scale the index tests plan at: big enough
// that scan dollars and per-range costs dominate request round trips, the
// regime where the paper's index-vs-scan crossover lives.
var idxScale = cloudsim.Scale{DataRatio: 20000, PartRatio: 8}

// newIndexStore builds a wide table whose index is much narrower than the
// data: wide(k INT, v INT, pad CHAR(48)), 4000 rows, v uniform in [0,400),
// partitioned x4.
func newIndexStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	pad := strings.Repeat("x", 48)
	var rows [][]string
	for i := 0; i < 4000; i++ {
		rows = append(rows, []string{fmt.Sprint(i), fmt.Sprint(i % 400), pad})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "wide", []string{"k", "v", "pad"}, rows, 4); err != nil {
		t.Fatal(err)
	}
	return st
}

func openIndexDB(t *testing.T, st *store.Store, opts ...Option) *DB {
	t.Helper()
	opts = append([]Option{
		WithBackend("s3sim", s3api.NewInProc(st)),
		WithScale(idxScale),
	}, opts...)
	db, err := Open(testBucket, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateIndexPersistsAndRediscovers(t *testing.T) {
	ctx := context.Background()
	st := newIndexStore(t)
	db := openIndexDB(t, st)
	if err := db.CreateIndex(ctx, "wide", "v"); err != nil {
		t.Fatal(err)
	}
	ents := db.Indexes(ctx, "wide")
	if len(ents) != 1 || ents[0].Column != "v" || ents[0].Partitions != 4 {
		t.Fatalf("Indexes = %+v", ents)
	}
	if ents[0].Name != "ix_wide_v" {
		t.Errorf("derived name = %q", ents[0].Name)
	}
	// The index objects are partition-aligned and never show up in the
	// data-partition listing.
	if keys := st.TableParts(testBucket, "wide"); len(keys) != 4 {
		t.Fatalf("data listing polluted: %v", keys)
	}
	if keys := st.List(testBucket, index.Table("wide", "v")+"/part"); len(keys) != 4 {
		t.Fatalf("index objects = %v", keys)
	}

	// A second DB over the same store rediscovers the index from the
	// manifest object alone.
	db2 := openIndexDB(t, st)
	ents = db2.Indexes(ctx, "wide")
	if len(ents) != 1 || ents[0].Name != "ix_wide_v" {
		t.Fatalf("fresh DB did not rediscover the index: %+v", ents)
	}

	// DROP INDEX retires it everywhere a fresh manifest read looks.
	if err := db2.DropNamedIndex(ctx, "wide", "ix_wide_v"); err != nil {
		t.Fatal(err)
	}
	if got := db2.Indexes(ctx, "wide"); len(got) != 0 {
		t.Fatalf("index survived drop: %+v", got)
	}
	db.InvalidateTable("wide") // db's memoized view predates the drop
	if got := db.Indexes(ctx, "wide"); len(got) != 0 {
		t.Fatalf("first DB still sees the dropped index: %+v", got)
	}
	if err := db2.DropIndex(ctx, "wide", "v"); err == nil {
		t.Error("dropping a missing index must fail")
	}
}

func TestIndexScanFilterMatchesPushedScan(t *testing.T) {
	ctx := context.Background()
	st := newIndexStore(t)
	db := openIndexDB(t, st)
	if err := db.CreateIndex(ctx, "wide", "v"); err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{
		"v = 7",
		"v <= 3",
		"v BETWEEN 5 AND 9",
		"v IN (1, 399)",
		"v >= 397 AND k < 3600", // residual conjunct re-applied locally
	} {
		e1 := db.NewExec()
		viaIndex, gets, err := e1.IndexScanFilter("wide", "v", pred, "k, v")
		if err != nil {
			t.Fatalf("%s: %v", pred, err)
		}
		e2 := db.NewExec()
		viaScan, err := e2.S3SideFilter("wide", pred, "k, v")
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, pred, viaIndex, viaScan)
		if len(viaIndex.Rows) > 0 && gets == 0 {
			t.Errorf("%s: matched rows but issued no multi-range GETs", pred)
		}
	}
	// Unusable predicates are rejected rather than silently full-scanned.
	if _, _, err := db.NewExec().IndexScanFilter("wide", "v", "k = 1", ""); err == nil {
		t.Error("predicate without the indexed column must fail")
	}
	if _, _, err := db.NewExec().IndexScanFilter("wide", "nosuch", "v = 1", ""); err == nil {
		t.Error("missing index must fail")
	}
}

func TestAccessPlannerPicksIndexThenScan(t *testing.T) {
	ctx := context.Background()
	st := newIndexStore(t)
	db := openIndexDB(t, st)
	if err := db.CreateIndex(ctx, "wide", "v"); err != nil {
		t.Fatal(err)
	}

	// Selective equality: IndexScan must win and actually run.
	rel, e, err := db.Query("SELECT k FROM wide WHERE v = 123")
	if err != nil {
		t.Fatal(err)
	}
	ap := e.Access()
	if ap == nil {
		t.Fatal("no access plan on an indexed table")
	}
	if ap.Strategy != StrategyIndexScan {
		t.Fatalf("selective equality chose %q:\n%s", ap.Strategy, ap)
	}
	if ap.RangedGets == 0 {
		t.Error("executed IndexScan recorded no multi-range GETs")
	}
	if len(rel.Rows) != 10 {
		t.Errorf("v = 123 returned %d rows, want 10", len(rel.Rows))
	}
	if len(ap.Estimates) != 3 {
		t.Errorf("access plan should weigh 3 strategies, got %v", ap.Estimates)
	}

	// Unselective range: the pushed scan (or baseline) must win; the index
	// candidate is still reported.
	_, e2, err := db.Query("SELECT k FROM wide WHERE v >= 10")
	if err != nil {
		t.Fatal(err)
	}
	ap2 := e2.Access()
	if ap2 == nil || ap2.Strategy == StrategyIndexScan {
		t.Fatalf("unselective range must not index-scan: %+v", ap2)
	}

	// Tables without a usable index plan nothing and run the legacy path.
	_, e3, err := db.Query("SELECT k FROM wide WHERE pad LIKE 'x%'")
	if err != nil {
		t.Fatal(err)
	}
	if e3.Access() != nil {
		t.Errorf("non-indexable filter got an access plan: %+v", e3.Access())
	}
}

func TestExplainNamesIndexScanAndRangedGets(t *testing.T) {
	ctx := context.Background()
	st := newIndexStore(t)
	db := openIndexDB(t, st)
	if err := db.CreateIndex(ctx, "wide", "v"); err != nil {
		t.Fatal(err)
	}
	out, err := db.Explain("SELECT k FROM wide WHERE v = 123")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, StrategyIndexScan) {
		t.Errorf("Explain does not name the IndexScan strategy:\n%s", out)
	}
	if !strings.Contains(out, "multi-range GET") {
		t.Errorf("Explain does not report the ranged-GET count:\n%s", out)
	}
	// All three strategy estimates are printed.
	for _, s := range []string{StrategyIndexScan, StrategyFiltered, StrategyBaseline} {
		if !strings.Contains(out, "est "+s) {
			t.Errorf("Explain misses the %s estimate:\n%s", s, out)
		}
	}
}

// TestIndexNeverServesStaleRanges is the mutation regression: an index
// must not survive a table reload — byte ranges into rewritten objects
// would return garbage rows.
func TestIndexNeverServesStaleRanges(t *testing.T) {
	ctx := context.Background()
	st := newIndexStore(t)
	db := openIndexDB(t, st, WithResultCache(testCacheBudget))
	if err := db.CreateIndex(ctx, "wide", "v"); err != nil {
		t.Fatal(err)
	}
	rel, e, err := db.Query("SELECT k FROM wide WHERE v = 42")
	if err != nil {
		t.Fatal(err)
	}
	if e.Access() == nil || e.Access().Strategy != StrategyIndexScan {
		t.Fatalf("precondition: the first query must index-scan, got %+v", e.Access())
	}
	if len(rel.Rows) != 10 {
		t.Fatalf("pre-reload v = 42 returned %d rows, want 10", len(rel.Rows))
	}

	// Rewrite the table: shifted keys, different row count and offsets.
	var rows [][]string
	pad := strings.Repeat("y", 48)
	for i := 0; i < 1777; i++ {
		rows = append(rows, []string{fmt.Sprint(i + 100000), fmt.Sprint(i % 1000), pad})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "wide", []string{"k", "v", "pad"}, rows, 4); err != nil {
		t.Fatal(err)
	}
	db.InvalidateTable("wide")

	rel2, e2, err := db.Query("SELECT k FROM wide WHERE v = 2")
	if err != nil {
		t.Fatal(err)
	}
	if ap := e2.Access(); ap != nil && ap.Strategy == StrategyIndexScan {
		t.Fatalf("stale index used after reload: %+v", ap)
	}
	if len(rel2.Rows) != 2 { // i = 2 and 1002
		t.Fatalf("post-reload v = 2 returned %d rows, want 2 (stale byte ranges?)", len(rel2.Rows))
	}
	for _, r := range rel2.Rows {
		if n, ok := r[0].IntNum(); !ok || n < 100000 {
			t.Fatalf("post-reload row %v is from the old table bytes", r)
		}
	}

	// Rebuilding restores the index access path with the new geometry (a
	// fresh value keeps the comparison scan cold: a warm cached scan would
	// legitimately out-price the index).
	if err := db.CreateIndex(ctx, "wide", "v"); err != nil {
		t.Fatal(err)
	}
	rel3, e3, err := db.Query("SELECT k FROM wide WHERE v = 3")
	if err != nil {
		t.Fatal(err)
	}
	if ap := e3.Access(); ap == nil || ap.Strategy != StrategyIndexScan {
		t.Fatalf("rebuilt index not used: %+v", e3.Access())
	}
	if len(rel3.Rows) != 2 {
		t.Fatalf("rebuilt index returned %d rows, want 2", len(rel3.Rows))
	}
}

func TestChainJoinOffersIndexScan(t *testing.T) {
	ctx := context.Background()
	st := newIndexStore(t)
	// A tiny driver table joined to wide through a selective indexed
	// filter: the chain step's strategy set must include indexscan, and
	// whichever strategy wins must produce the right rows.
	var drv [][]string
	for i := 0; i < 8; i++ {
		drv = append(drv, []string{fmt.Sprint(i), fmt.Sprint(i * 50)})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "drv", []string{"dk", "dv"}, drv, 2); err != nil {
		t.Fatal(err)
	}
	var mid [][]string
	for i := 0; i < 64; i++ {
		mid = append(mid, []string{fmt.Sprint(i), fmt.Sprint(i % 8)})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "mid", []string{"mk", "dk"}, mid, 2); err != nil {
		t.Fatal(err)
	}
	db := openIndexDB(t, st)
	if err := db.CreateIndex(ctx, "wide", "v"); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT COUNT(*) AS n FROM drv JOIN mid ON drv.dk = mid.dk " +
		"JOIN wide ON mid.mk = wide.v WHERE wide.v <= 2 AND drv.dv <= 400"
	rel, e, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan := e.QueryPlan()
	if plan == nil || len(plan.Steps) != 2 {
		t.Fatalf("expected a 2-step chain plan, got %+v", plan)
	}
	var wideScan *TableScan
	for _, sc := range plan.Scans {
		if sc.Table == "wide" {
			wideScan = sc
		}
	}
	if wideScan == nil || wideScan.Index == nil {
		t.Fatalf("wide scan lost its index candidate: %+v", wideScan)
	}
	chain := plan.Steps[1]
	if _, ok := chain.Estimates[StrategyIndexScan]; !ok {
		t.Fatalf("chain step did not price indexscan: %+v", chain.Estimates)
	}
	// Cross-check the answer against a DB with no index at all.
	stPlain := newIndexStore(t)
	if err := PartitionTable(context.Background(), stPlain, testBucket, "drv", []string{"dk", "dv"}, drv, 2); err != nil {
		t.Fatal(err)
	}
	if err := PartitionTable(context.Background(), stPlain, testBucket, "mid", []string{"mk", "dk"}, mid, 2); err != nil {
		t.Fatal(err)
	}
	want, _, err := openIndexDB(t, stPlain).Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0].String() != want.Rows[0][0].String() {
		t.Errorf("indexed chain join count %s != plain %s (strategy %s)",
			rel.Rows[0][0], want.Rows[0][0], chain.Strategy)
	}
}

func TestExecStatementRoutesDDL(t *testing.T) {
	ctx := context.Background()
	st := newIndexStore(t)
	db := openIndexDB(t, st)
	if _, _, err := db.ExecStatement(ctx, "CREATE INDEX myix ON wide (v)"); err != nil {
		t.Fatal(err)
	}
	ents := db.Indexes(ctx, "wide")
	if len(ents) != 1 || ents[0].Name != "myix" {
		t.Fatalf("CREATE INDEX statement did not build: %+v", ents)
	}
	rel, e, err := db.ExecStatement(ctx, "SELECT COUNT(*) AS n FROM wide WHERE v = 1")
	if err != nil || rel == nil || e == nil {
		t.Fatalf("SELECT through ExecStatement: %v", err)
	}
	if _, _, err := db.ExecStatement(ctx, "DROP INDEX myix ON wide"); err != nil {
		t.Fatal(err)
	}
	if got := db.Indexes(ctx, "wide"); len(got) != 0 {
		t.Fatalf("DROP INDEX statement left %+v", got)
	}
}
