package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pushdowndb/internal/index"
	"pushdowndb/internal/s3api"
)

// Secondary-index catalog operations. An index is built once (CreateIndex
// scans every data partition and writes value-sorted
// |value|first_byte_offset|last_byte_offset| objects next to the data,
// plus a per-table manifest object), persists on the table's storage
// backend, and is rediscovered by any DB that opens the bucket later.
// Building and dropping are dataset-preparation operations like the
// loaders: they are not metered on any query's virtual clock. Querying
// through an index — the IndexScan access path in indexscan.go — is.

// CreateIndex builds (or rebuilds) the secondary index on table(column):
// one index object per data partition, written through the table's backend
// (which must accept writes — s3api.Putter), and an updated manifest. The
// table's cached statistics, cached select results for the index objects
// and the in-memory manifest view are invalidated so the next query plans
// against the fresh index.
func (db *DB) CreateIndex(ctx context.Context, table, column string) error {
	return db.CreateNamedIndex(ctx, "", table, column)
}

// CreateNamedIndex is CreateIndex with an explicit index name (the SQL
// front end's CREATE INDEX name ON table (column)); an empty name derives
// ix_<table>_<column>.
func (db *DB) CreateNamedIndex(ctx context.Context, name, table, column string) error {
	backendName, backend := db.BackendFor(table)
	putter, ok := backend.(s3api.Putter)
	if !ok {
		return s3api.NewError("put", db.bucket, table, s3api.KindUnsupported,
			fmt.Errorf("engine: backend %q does not accept writes; cannot build an index there", backendName))
	}
	keys, err := backend.List(ctx, db.bucket, table+"/part")
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		return s3api.NewError("list", db.bucket, table+"/part", s3api.KindNotFound,
			fmt.Errorf("engine: table %q has no partitions in bucket %q on backend %q",
				table, db.bucket, backendName))
	}
	if name == "" {
		name = "ix_" + table + "_" + strings.ToLower(column)
	}
	ent := index.Entry{
		Name: name, Column: column,
		Partitions: len(keys),
		DataSizes:  make([]int64, len(keys)),
	}
	for i, key := range keys {
		//lint:ignore metered index builds are dataset preparation, outside every query's virtual clock (see package comment)
		data, err := backend.Get(ctx, db.bucket, key)
		if err != nil {
			return err
		}
		idxData, err := index.BuildPartition(data, column)
		if err != nil {
			return fmt.Errorf("engine: indexing %s: %w", key, err)
		}
		if err := putter.Put(ctx, db.bucket, index.ObjectKey(table, column, i), idxData); err != nil {
			return err
		}
		ent.DataSizes[i] = int64(len(data))
		ent.IndexBytes += int64(len(idxData))
	}
	if err := db.updateManifest(ctx, table, func(m *index.Manifest) error {
		m.Set(ent)
		return nil
	}); err != nil {
		return err
	}
	db.dropIndexCaches(table, column)
	return nil
}

// DropIndex retires the index on table(column) from the manifest. The
// index objects themselves are left behind (backends expose no delete);
// they are orphaned bytes a future CreateIndex on the same column
// overwrites, and nothing reads them once the manifest entry is gone.
func (db *DB) DropIndex(ctx context.Context, table, column string) error {
	err := db.updateManifest(ctx, table, func(m *index.Manifest) error {
		if !m.Remove(column) {
			return fmt.Errorf("engine: no index on %s(%s)", table, column)
		}
		return nil
	})
	if err != nil {
		return err
	}
	db.dropIndexCaches(table, column)
	return nil
}

// DropNamedIndex retires the index called name on table (the SQL front
// end's DROP INDEX name ON table).
func (db *DB) DropNamedIndex(ctx context.Context, table, name string) error {
	var column string
	err := db.updateManifest(ctx, table, func(m *index.Manifest) error {
		for _, e := range m.Indexes {
			if strings.EqualFold(e.Name, name) {
				column = e.Column
				m.Remove(e.Column)
				return nil
			}
		}
		return fmt.Errorf("engine: no index named %q on table %s", name, table)
	})
	if err != nil {
		return err
	}
	db.dropIndexCaches(table, column)
	return nil
}

// Indexes returns the table's live (non-stale) index entries, sorted by
// column. A table with no manifest has no indexes.
func (db *DB) Indexes(ctx context.Context, table string) []index.Entry {
	m := db.indexManifest(ctx, table)
	var out []index.Entry
	for _, e := range m.Indexes {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}

// updateManifest applies fn to the table's stored manifest (reading the
// raw object, not the validated in-memory view) and writes it back.
func (db *DB) updateManifest(ctx context.Context, table string, fn func(*index.Manifest) error) error {
	backendName, backend := db.BackendFor(table)
	putter, ok := backend.(s3api.Putter)
	if !ok {
		return s3api.NewError("put", db.bucket, index.ManifestKey(table), s3api.KindUnsupported,
			fmt.Errorf("engine: backend %q does not accept writes; cannot update the index manifest", backendName))
	}
	m, err := db.loadManifest(ctx, table)
	if err != nil {
		return err
	}
	if err := fn(m); err != nil {
		return err
	}
	return putter.Put(ctx, db.bucket, index.ManifestKey(table), m.Encode())
}

// loadManifest reads and decodes the table's manifest object, returning an
// empty manifest when none exists yet.
func (db *DB) loadManifest(ctx context.Context, table string) (*index.Manifest, error) {
	backend := db.backendFor(table)
	//lint:ignore metered catalog read: the manifest is engine metadata, refreshed per DB, never billed to a query
	data, err := backend.Get(ctx, db.bucket, index.ManifestKey(table))
	if err != nil {
		if s3api.IsNotFound(err) {
			return index.NewManifest(), nil
		}
		return nil, err
	}
	return index.DecodeManifest(data)
}

// indexManifest returns the table's validated index view, loading it from
// storage on first use: entries whose recorded data-partition sizes no
// longer match the live partitions are dropped (the index would resolve
// byte ranges into rewritten objects), as is everything when the manifest
// is missing or unreadable. Catalog reads are not metered — they are the
// engine's own metadata, refreshed per DB and after InvalidateTable, not
// per query.
func (db *DB) indexManifest(ctx context.Context, table string) *index.Manifest {
	key := strings.ToLower(table)
	db.idxMu.Lock()
	if m, ok := db.idxMemo[key]; ok {
		db.idxMu.Unlock()
		return m
	}
	db.idxMu.Unlock()

	m := db.validatedManifest(ctx, table)

	db.idxMu.Lock()
	if db.idxMemo == nil {
		db.idxMemo = map[string]*index.Manifest{}
	}
	db.idxMemo[key] = m
	db.idxMu.Unlock()
	return m
}

// validatedManifest loads the stored manifest and filters out stale
// entries. Any read failure yields an empty manifest: an index the engine
// cannot vouch for is an index it must not use.
func (db *DB) validatedManifest(ctx context.Context, table string) *index.Manifest {
	m, err := db.loadManifest(ctx, table)
	if err != nil {
		return index.NewManifest()
	}
	if len(m.Indexes) == 0 {
		return m
	}
	backend := db.backendFor(table)
	keys, err := backend.List(ctx, db.bucket, table+"/part")
	if err != nil {
		return index.NewManifest()
	}
	sizes := make([]int64, len(keys))
	for i, k := range keys {
		//lint:ignore metered catalog read: staleness stamps validate the manifest per DB, never billed to a query
		n, err := backend.Size(ctx, db.bucket, k)
		if err != nil {
			return index.NewManifest()
		}
		sizes[i] = n
	}
	for col, e := range m.Indexes {
		if e.Stale(sizes) {
			delete(m.Indexes, col)
		}
	}
	return m
}

// dropIndexCaches invalidates what a rebuilt or dropped index makes stale:
// the in-memory manifest view, cached select results against the index
// objects, and cached planner stats of the table (their index-matched
// counts referenced the old index).
func (db *DB) dropIndexCaches(table, column string) {
	db.idxMu.Lock()
	delete(db.idxMemo, strings.ToLower(table))
	db.idxMu.Unlock()
	db.statsMu.Lock()
	for k := range db.statsCache {
		parts := strings.SplitN(k, "\x00", 4)
		if len(parts) == 4 && baseTable(parts[2]) == table {
			delete(db.statsCache, k)
		}
	}
	db.statsMu.Unlock()
	if db.resultCache != nil && column != "" {
		db.resultCache.InvalidatePrefix(db.bucket, index.Table(table, column)+"/")
	}
}
