package engine

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/store"
	"pushdowndb/internal/value"
)

const testBucket = "test"

// newTestStore builds a store with the shared test tables:
//
//	events(k INT, g INT, v FLOAT)  — 1000 rows, g in [0,10), partitioned x4
//	cust(ck INT, bal FLOAT)        — 100 rows, partitioned x2
//	ords(ok INT, ck INT, price FLOAT) — 400 rows, partitioned x4
func newTestStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	rng := rand.New(rand.NewSource(12345))

	var events [][]string
	for i := 0; i < 1000; i++ {
		events = append(events, []string{
			fmt.Sprint(i),
			fmt.Sprint(rng.Intn(10)),
			fmt.Sprintf("%.2f", rng.Float64()*100-50),
		})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "events", []string{"k", "g", "v"}, events, 4); err != nil {
		t.Fatal(err)
	}
	if err := BuildIndexTable(st, testBucket, "events", "v"); err != nil {
		t.Fatal(err)
	}

	var cust [][]string
	for i := 0; i < 100; i++ {
		cust = append(cust, []string{fmt.Sprint(i), fmt.Sprintf("%.2f", rng.Float64()*2000-1000)})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "cust", []string{"ck", "bal"}, cust, 2); err != nil {
		t.Fatal(err)
	}

	var ords [][]string
	for i := 0; i < 400; i++ {
		ords = append(ords, []string{
			fmt.Sprint(i),
			fmt.Sprint(rng.Intn(100)),
			fmt.Sprintf("%.2f", rng.Float64()*500),
		})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "ords", []string{"ok", "ck", "price"}, ords, 4); err != nil {
		t.Fatal(err)
	}
	return st
}

// openTestDB opens a DB over st with one in-process backend built with the
// given options.
func openTestDB(t *testing.T, st *store.Store, bopts ...s3api.InProcOption) *DB {
	t.Helper()
	db, err := Open(testBucket, WithBackend("s3sim", s3api.NewInProc(st, bopts...)))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestDB builds the shared test store and opens a default DB over it.
func newTestDB(t *testing.T) (*DB, *store.Store) {
	t.Helper()
	st := newTestStore(t)
	return openTestDB(t, st), st
}

func sortedRows(rel *Relation) []string {
	out := make([]string, len(rel.Rows))
	for i, r := range rel.Rows {
		s := ""
		for _, v := range r {
			s += v.String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, name string, a, b *Relation) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: %d rows vs %d rows", name, len(a.Rows), len(b.Rows))
	}
	ra, rb := sortedRows(a), sortedRows(b)
	if !reflect.DeepEqual(ra, rb) {
		max := 5
		if len(ra) < max {
			max = len(ra)
		}
		t.Fatalf("%s: rows differ, e.g. %v vs %v", name, ra[:max], rb[:max])
	}
}

// --- local operators ---

func TestLocalOperators(t *testing.T) {
	rel := FromStrings([]string{"a", "b"}, [][]string{{"3", "x"}, {"1", "y"}, {"2", "x"}})
	f, err := FilterLocal(rel, "b = 'x'")
	if err != nil || len(f.Rows) != 2 {
		t.Fatalf("filter: %v, %v", f, err)
	}
	p, err := ProjectLocal(rel, "a * 2 AS dbl, b")
	if err != nil || p.Cols[0] != "dbl" || p.Rows[0][0].AsInt() != 6 {
		t.Fatalf("project: %v, %v", p, err)
	}
	s, err := SortLocal(rel, "a DESC")
	if err != nil || s.Rows[0][0].AsInt() != 3 || s.Rows[2][0].AsInt() != 1 {
		t.Fatalf("sort: %v, %v", s, err)
	}
	l := LimitLocal(s, 2)
	if len(l.Rows) != 2 {
		t.Fatalf("limit: %v", l)
	}
	if got := LimitLocal(s, 100); len(got.Rows) != 3 {
		t.Fatal("limit beyond length should be a no-op")
	}
}

func TestHashJoinLocal(t *testing.T) {
	left := FromStrings([]string{"id", "name"}, [][]string{{"1", "a"}, {"2", "b"}, {"3", "c"}})
	right := FromStrings([]string{"fk", "val"}, [][]string{{"2", "x"}, {"2", "y"}, {"9", "z"}})
	j, err := HashJoinLocal(left, right, "id", "fk")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Rows) != 2 {
		t.Fatalf("join rows = %v", j.Rows)
	}
	if j.Cols[0] != "id" || j.Cols[3] != "val" {
		t.Errorf("join cols = %v", j.Cols)
	}
	if _, err := HashJoinLocal(left, right, "nope", "fk"); err == nil {
		t.Error("bad key should error")
	}
}

func TestGroupByLocal(t *testing.T) {
	rel := FromStrings([]string{"g", "v"}, [][]string{{"a", "1"}, {"b", "2"}, {"a", "3"}})
	out, err := GroupByLocal(rel, "g", "g, SUM(v) AS s, COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][2]int64{}
	for _, r := range out.Rows {
		got[r[0].String()] = [2]int64{mustInt(r[1]), mustInt(r[2])}
	}
	if got["a"] != [2]int64{4, 2} || got["b"] != [2]int64{2, 1} {
		t.Errorf("groups = %v", got)
	}
}

func mustInt(v value.Value) int64 {
	i, _ := v.IntNum()
	return i
}

// --- scans ---

func TestLoadTableMatchesSelectStar(t *testing.T) {
	db, _ := newTestDB(t)
	e1 := db.NewExec()
	loaded, err := e1.LoadTable("load", e1.NextStage(), "events")
	if err != nil {
		t.Fatal(err)
	}
	e2 := db.NewExec()
	selected, err := e2.SelectRows("scan", e2.NextStage(), "events", "SELECT * FROM S3Object")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "load vs select *", loaded, selected)
	if len(loaded.Rows) != 1000 {
		t.Fatalf("rows = %d", len(loaded.Rows))
	}
}

func TestSelectAggMergesPartitions(t *testing.T) {
	db, _ := newTestDB(t)
	e := db.NewExec()
	row, err := e.SelectAgg("agg", e.NextStage(), "events",
		"SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM S3Object",
		[]sqlparse.AggFunc{sqlparse.AggCount, sqlparse.AggSum, sqlparse.AggMin, sqlparse.AggMax})
	if err != nil {
		t.Fatal(err)
	}
	if mustInt(row[0]) != 1000 {
		t.Errorf("count = %v", row[0])
	}
	// Cross-check against a local scan.
	e2 := db.NewExec()
	all, _ := e2.LoadTable("load", e2.NextStage(), "events")
	loc, err := AggregateLocal(all, "SUM(v) AS s, MIN(v) AS mn, MAX(v) AS mx")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range loc.Rows[0] {
		got, _ := row[i+1].Num()
		w, _ := want.Num()
		if diff := got - w; diff > 0.01 || diff < -0.01 {
			t.Errorf("agg %d: %v != %v", i, got, w)
		}
	}
}

func TestTableHeader(t *testing.T) {
	db, _ := newTestDB(t)
	e := db.NewExec()
	h, err := e.TableHeader("hdr", e.NextStage(), "events")
	if err != nil || !reflect.DeepEqual(h, []string{"k", "g", "v"}) {
		t.Fatalf("header = %v, %v", h, err)
	}
}

// --- Section IV: filter strategies ---

func TestFilterStrategiesAgree(t *testing.T) {
	db, _ := newTestDB(t)
	pred := "v <= -40"

	e1 := db.NewExec()
	server, err := e1.ServerSideFilter("events", pred, "")
	if err != nil {
		t.Fatal(err)
	}
	e2 := db.NewExec()
	s3side, err := e2.S3SideFilter("events", pred, "*")
	if err != nil {
		t.Fatal(err)
	}
	e3 := db.NewExec()
	indexed, err := e3.IndexFilter("events", "v", "value <= -40", IndexFilterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e4 := db.NewExec()
	indexedMR, err := e4.IndexFilter("events", "v", "value <= -40", IndexFilterOptions{MultiRange: true})
	if err != nil {
		t.Fatal(err)
	}

	if len(server.Rows) == 0 {
		t.Fatal("test predicate selected nothing")
	}
	sameRows(t, "server vs s3-side", server, s3side)
	sameRows(t, "server vs indexed", server, indexed)
	sameRows(t, "server vs indexed multirange", server, indexedMR)

	// Data movement: server-side pulls the whole table; S3-side returns
	// only the matches. (At this toy scale both runtimes bottom out at
	// the request RTT, so compare bytes, not seconds — the harness tests
	// verify the runtime shapes at realistic scale.)
	_, _, _, serverGet := e1.Metrics.Totals()
	_, _, s3Returned, _ := e2.Metrics.Totals()
	if s3Returned >= serverGet {
		t.Errorf("s3-side returned %d bytes should be far below server-side load %d", s3Returned, serverGet)
	}
	// Multi-range GET must use fewer requests than per-row GETs.
	req3, _, _, _ := e3.Metrics.Totals()
	req4, _, _, _ := e4.Metrics.Totals()
	if req4 >= req3 {
		t.Errorf("multi-range requests %d should be < per-row requests %d", req4, req3)
	}
}

func TestIndexFilterMissingIndex(t *testing.T) {
	db, _ := newTestDB(t)
	e := db.NewExec()
	if _, err := e.IndexFilter("events", "nosuchcol", "value <= 0", IndexFilterOptions{}); err == nil {
		t.Error("missing index table should error")
	}
}

// --- Section V: joins ---

func joinSpec() JoinSpec {
	return JoinSpec{
		LeftTable: "cust", RightTable: "ords",
		LeftKey: "ck", RightKey: "ck",
		LeftFilter:   "bal <= -500",
		LeftProject:  []string{"ck", "bal"},
		RightProject: []string{"ck", "price"},
		Seed:         7,
	}
}

func TestJoinAlgorithmsAgree(t *testing.T) {
	db, _ := newTestDB(t)
	baselineExec := db.NewExec()
	baseline, err := baselineExec.JoinAggregate(joinSpec(), "baseline", "SUM(price) AS total, COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	filteredExec := db.NewExec()
	filtered, err := filteredExec.JoinAggregate(joinSpec(), "filtered", "SUM(price) AS total, COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	bloomExec := db.NewExec()
	bloomed, err := bloomExec.JoinAggregate(joinSpec(), "bloom", "SUM(price) AS total, COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}

	for name, rel := range map[string]*Relation{"filtered": filtered, "bloom": bloomed} {
		for i := range baseline.Rows[0] {
			a, _ := baseline.Rows[0][i].Num()
			b, _ := rel.Rows[0][i].Num()
			if diff := a - b; diff > 0.01 || diff < -0.01 {
				t.Errorf("%s join item %d: %v != baseline %v", name, i, b, a)
			}
		}
	}

	// The Bloom filter must reduce probe-side returned bytes vs filtered.
	_, _, retF, getF := filteredExec.Metrics.Totals()
	_, _, retB, _ := bloomExec.Metrics.Totals()
	_ = getF
	if retB >= retF {
		t.Errorf("bloom returned %d bytes, filtered %d — filter ineffective", retB, retF)
	}
	if _, err := db.NewExec().JoinAggregate(joinSpec(), "nope", "COUNT(*) AS n"); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestBloomJoinBitwise(t *testing.T) {
	st := newTestStore(t)
	// BLOOM_CONTAINS needs a backend advertising the Suggestion-3
	// capability.
	db := openTestDB(t, st, s3api.WithCapabilities(
		selectengine.Capabilities{AllowBloomContains: true}))
	js := joinSpec()
	js.Bitwise = true
	e := db.NewExec()
	got, err := e.JoinAggregate(js, "bloom", "COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.NewExec().JoinAggregate(joinSpec(), "baseline", "COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	if mustInt(got.Rows[0][0]) != mustInt(want.Rows[0][0]) {
		t.Errorf("bitwise bloom join count %v != %v", got.Rows[0][0], want.Rows[0][0])
	}
}

func TestBloomJoinDegradesToFiltered(t *testing.T) {
	db, _ := newTestDB(t)
	js := joinSpec()
	js.LeftFilter = "" // every customer: filter too big for a tiny budget?
	// Force degradation by making the FPR target unreachable: patch the
	// spec to a huge key set via a tiny SQL budget is internal; instead we
	// verify the join still answers correctly with no left filter (the
	// bloom path with all keys, possibly degraded).
	e := db.NewExec()
	got, err := e.JoinAggregate(js, "bloom", "COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := db.NewExec().JoinAggregate(js, "baseline", "COUNT(*) AS n")
	if mustInt(got.Rows[0][0]) != mustInt(want.Rows[0][0]) {
		t.Errorf("degraded bloom join count %v != %v", got.Rows[0][0], want.Rows[0][0])
	}
}

func TestJoinEmptyBuildSide(t *testing.T) {
	db, _ := newTestDB(t)
	js := joinSpec()
	js.LeftFilter = "bal < -99999"
	got, err := db.NewExec().JoinAggregate(js, "bloom", "COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	if mustInt(got.Rows[0][0]) != 0 {
		t.Errorf("empty build side should join to zero rows, got %v", got.Rows[0][0])
	}
}

// --- Section VI: group-by ---

func groupAggs() []GroupAgg {
	return []GroupAgg{
		{Func: sqlparse.AggSum, Expr: "v", As: "total"},
		{Func: sqlparse.AggCount, As: "n"},
	}
}

func TestGroupByAlgorithmsAgree(t *testing.T) {
	db, _ := newTestDB(t)
	run := func(name string, f func(*Exec) (*Relation, error)) *Relation {
		t.Helper()
		e := db.NewExec()
		rel, err := f(e)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return rel
	}
	server := run("server", func(e *Exec) (*Relation, error) {
		return e.ServerSideGroupBy("events", "g", groupAggs(), "")
	})
	filtered := run("filtered", func(e *Exec) (*Relation, error) {
		return e.FilteredGroupBy("events", "g", groupAggs(), "")
	})
	s3side := run("s3side", func(e *Exec) (*Relation, error) {
		return e.S3SideGroupBy("events", "g", groupAggs(), "")
	})
	hybrid := run("hybrid", func(e *Exec) (*Relation, error) {
		return e.HybridGroupBy("events", "g", groupAggs(), HybridGroupByOptions{S3Groups: 4, SampleFraction: 0.05})
	})

	norm := func(rel *Relation) map[string]string {
		out := map[string]string{}
		for _, r := range rel.Rows {
			sum, _ := r[1].Num()
			out[r[0].String()] = fmt.Sprintf("%.1f|%d", sum, mustInt(r[2]))
		}
		return out
	}
	want := norm(server)
	if len(want) != 10 {
		t.Fatalf("expected 10 groups, got %d", len(want))
	}
	for name, rel := range map[string]*Relation{"filtered": filtered, "s3side": s3side, "hybrid": hybrid} {
		if got := norm(rel); !reflect.DeepEqual(got, want) {
			t.Errorf("%s group-by differs:\n got %v\nwant %v", name, got, want)
		}
	}
}

func TestHybridGroupByPartialGroupBy(t *testing.T) {
	st := newTestStore(t)
	db := openTestDB(t, st, s3api.WithCapabilities(
		selectengine.Capabilities{AllowGroupBy: true}))
	e := db.NewExec()
	got, err := e.HybridGroupBy("events", "g", groupAggs(),
		HybridGroupByOptions{S3Groups: 3, SampleFraction: 0.05, UsePartialGroupBy: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.NewExec().ServerSideGroupBy("events", "g", groupAggs(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("groups = %d, want %d", len(got.Rows), len(want.Rows))
	}
}

func TestS3SideGroupByRejectsMinMax(t *testing.T) {
	db, _ := newTestDB(t)
	_, err := db.NewExec().S3SideGroupBy("events", "g",
		[]GroupAgg{{Func: sqlparse.AggMin, Expr: "v", As: "m"}}, "")
	if err == nil {
		t.Error("MIN cannot be pushed via CASE encoding")
	}
}

// --- Section VII: top-K ---

func TestTopKAlgorithmsAgree(t *testing.T) {
	db, _ := newTestDB(t)
	for _, asc := range []bool{true, false} {
		e1 := db.NewExec()
		server, err := e1.ServerSideTopK("events", "v", 10, asc)
		if err != nil {
			t.Fatal(err)
		}
		e2 := db.NewExec()
		sampled, err := e2.SamplingTopK("events", "v", 10, asc, SamplingTopKOptions{SampleSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		if len(server.Rows) != 10 || len(sampled.Rows) != 10 {
			t.Fatalf("asc=%v: rows %d/%d", asc, len(server.Rows), len(sampled.Rows))
		}
		vi := server.ColIndex("v")
		for i := range server.Rows {
			a, _ := server.Rows[i][vi].Num()
			b, _ := sampled.Rows[i][vi].Num()
			if a != b {
				t.Errorf("asc=%v row %d: server %v sampled %v", asc, i, a, b)
			}
		}
		// Ordering check.
		for i := 1; i < len(server.Rows); i++ {
			c := value.Compare(server.Rows[i-1][vi], server.Rows[i][vi])
			if asc && c > 0 || !asc && c < 0 {
				t.Errorf("asc=%v: rows out of order at %d", asc, i)
			}
		}
	}
}

func TestSamplingTopKAutoSampleSize(t *testing.T) {
	db, _ := newTestDB(t)
	e := db.NewExec()
	got, err := e.SamplingTopK("events", "v", 5, true, SamplingTopKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 5 {
		t.Fatalf("rows = %d", len(got.Rows))
	}
}

func TestSamplingTopKDegradesOnTinySample(t *testing.T) {
	db, _ := newTestDB(t)
	e := db.NewExec()
	// K far larger than the sample forces the degraded full-scan path.
	got, err := e.SamplingTopK("events", "v", 50, true, SamplingTopKOptions{SampleSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := db.NewExec().ServerSideTopK("events", "v", 50, true)
	vi := want.ColIndex("v")
	for i := range want.Rows {
		a, _ := want.Rows[i][vi].Num()
		b, _ := got.Rows[i][vi].Num()
		if a != b {
			t.Fatalf("degraded sampling row %d: %v != %v", i, b, a)
		}
	}
}

func TestOptimalSampleSize(t *testing.T) {
	// Paper's worked example: K=100, N=6e7, alpha=0.1 -> ~2.4e5.
	s := OptimalSampleSize(100, 60_000_000, 0.1)
	if s < 240_000 || s > 250_000 {
		t.Errorf("S = %d, want ~245k", s)
	}
	if OptimalSampleSize(10, 5, 1) != 5 {
		t.Error("sample size must clamp to N")
	}
	if OptimalSampleSize(100, 101, 1) < 100 {
		t.Error("sample size must be at least K")
	}
}

// --- metrics sanity ---

func TestMetricsAccumulateAcrossStages(t *testing.T) {
	db, _ := newTestDB(t)
	e := db.NewExec()
	if _, err := e.JoinAggregate(joinSpec(), "bloom", "COUNT(*) AS n"); err != nil {
		t.Fatal(err)
	}
	if e.RuntimeSeconds() <= 0 {
		t.Error("runtime should be positive")
	}
	c := e.Cost()
	if c.Total() <= 0 || c.ScanUSD <= 0 {
		t.Errorf("cost breakdown incomplete: %+v", c)
	}
	requests, scan, _, _ := e.Metrics.Totals()
	if requests == 0 || scan == 0 {
		t.Error("request/scan accounting missing")
	}
}
