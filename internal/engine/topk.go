package engine

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"pushdowndb/internal/value"
)

// Section VII: top-K algorithms.

// OptimalSampleSize evaluates the paper's closed form S = sqrt(K*N/alpha)
// (Section VII-B), where alpha is the fraction of row bytes the sampling
// phase needs (the ORDER BY columns only).
func OptimalSampleSize(k int, n int64, alpha float64) int64 {
	if k < 1 || n < 1 || alpha <= 0 {
		return int64(k)
	}
	s := int64(math.Sqrt(float64(k) * float64(n) / alpha))
	if s < int64(k) {
		s = int64(k)
	}
	if s > n {
		s = n
	}
	return s
}

// ServerSideTopK loads the whole table and selects the top K locally with
// a bounded heap — the Fig. 9 baseline.
func (e *Exec) ServerSideTopK(table, orderCol string, k int, asc bool) (*Relation, error) {
	sp := e.beginSpan("server topk " + table)
	defer sp.End()
	prev := e.setSpanParent(sp)
	defer e.restoreSpanParent(prev)
	stage := e.NextStage()
	rel, err := e.LoadTable("load "+table, stage, table)
	if err != nil {
		return nil, err
	}
	phase := e.Metrics.Phase("load "+table, stage)
	phase.AddServerRows(int64(len(rel.Rows)))
	// Heap maintenance grows with log K; charge an extra unit per row per
	// factor-of-1024 of K to reflect the paper's K sensitivity.
	phase.AddServerRows(int64(len(rel.Rows)) * int64(math.Log2(float64(k)+2)) / 10)
	return topKLocalN(rel, orderCol, k, asc, e.workers())
}

// SamplingTopKOptions tunes Section VII-A.
type SamplingTopKOptions struct {
	// SampleSize S; 0 derives the optimal size from the closed form using
	// Alpha and the table's (approximate) row count.
	SampleSize int64
	// Alpha is the byte fraction needed during sampling (default 0.1).
	Alpha float64
}

// SamplingTopK implements the two-phase sampling algorithm of Section
// VII-A: phase 1 samples S rows (projection of the order column with an
// early-terminating LIMIT scan) and takes the K-th value as a threshold;
// phase 2 scans with the threshold pushed to S3 and finishes on a heap.
// The threshold guarantees at least K qualifying rows because the sample
// is a subset of the table.
func (e *Exec) SamplingTopK(table, orderCol string, k int, asc bool, opts SamplingTopKOptions) (*Relation, error) {
	if k < 1 {
		return nil, fmt.Errorf("engine: top-K requires K >= 1")
	}
	alpha := opts.Alpha
	if alpha <= 0 {
		alpha = 0.1
	}
	sample := opts.SampleSize
	sp := e.beginSpan("sampling topk " + table)
	defer sp.End()
	prev := e.setSpanParent(sp)
	defer e.restoreSpanParent(prev)

	// Phase 1: sample the order column.
	stage1 := e.NextStage()
	if sample <= 0 {
		n, err := e.approxRowCount(stage1, table)
		if err != nil {
			return nil, err
		}
		sample = OptimalSampleSize(k, n, alpha)
	}
	sampled, err := e.SelectRowsLimit("sample "+table, stage1, table,
		"SELECT "+orderCol+" FROM S3Object", sample)
	if err != nil {
		return nil, err
	}
	e.Metrics.Phase("sample "+table, stage1).AddServerRows(int64(len(sampled.Rows)))
	if int64(len(sampled.Rows)) < int64(k) {
		// The sample cannot bound the top K (tiny table or tiny sample):
		// degrade to the server-side algorithm for correctness.
		rel, err := e.SelectRows("full scan "+table, e.NextStage(), table, "SELECT * FROM S3Object")
		if err != nil {
			return nil, err
		}
		return topKLocalN(rel, orderCol, k, asc, e.workers())
	}
	threshold, err := kthValue(sampled, 0, k, asc)
	if err != nil {
		return nil, err
	}

	// Phase 2: threshold-filtered scan, then a heap over the survivors.
	stage2 := e.NextStage()
	op := "<="
	if !asc {
		op = ">="
	}
	scanned, err := e.SelectRows("threshold scan "+table, stage2, table,
		fmt.Sprintf("SELECT * FROM S3Object WHERE %s %s %s", orderCol, op, threshold))
	if err != nil {
		return nil, err
	}
	phase := e.Metrics.Phase("threshold scan "+table, stage2)
	phase.AddServerRows(int64(len(scanned.Rows)))
	return topKLocalN(scanned, orderCol, k, asc, e.workers())
}

// approxRowCount estimates the table's row count from one partition's
// average row width — a tiny metered probe, not a full scan.
func (e *Exec) approxRowCount(stage int, table string) (int64, error) {
	keys, err := e.parts(table)
	if err != nil {
		return 0, err
	}
	backend := e.db.backendFor(table)
	// The per-partition size probes are priced requests (S3 HEADs) like
	// everything else this estimate costs; they meter as zero-byte GETs on
	// the same phase the row probe below opens.
	sp := e.beginSpan("probe " + table)
	phase := e.tablePhase("probe "+table, stage, table)
	defer func() { e.endPhaseSpan(sp, phase) }()
	var totalBytes int64
	for _, k := range keys {
		n, err := backend.Size(e.ctx, e.db.bucket, k)
		if err != nil {
			return 0, err
		}
		phase.AddGetRequest(0)
		totalBytes += n
	}
	const probeRows = 64
	probe, err := e.SelectRowsLimit("probe "+table, stage, table,
		"SELECT * FROM S3Object", probeRows*int64(len(keys)))
	if err != nil {
		return 0, err
	}
	if len(probe.Rows) == 0 {
		return 0, nil
	}
	var w int64
	for _, r := range probe.Rows {
		for _, v := range r {
			w += int64(len(v.String())) + 1
		}
	}
	avg := float64(w) / float64(len(probe.Rows))
	return int64(float64(totalBytes) / avg), nil
}

// kthValue returns the K-th smallest (asc) or largest (desc) value of
// column idx, rendered as a SQL literal for the threshold predicate.
func kthValue(rel *Relation, idx, k int, asc bool) (string, error) {
	vals := make([]value.Value, 0, len(rel.Rows))
	for _, r := range rel.Rows {
		if !r[idx].IsNull() {
			vals = append(vals, r[idx])
		}
	}
	if len(vals) < k {
		return "", fmt.Errorf("engine: sample of %d rows cannot provide the %d-th value", len(vals), k)
	}
	h := &valueHeap{asc: !asc} // keep the K smallest: max-heap on top
	for _, v := range vals {
		if h.Len() < k {
			heap.Push(h, v)
		} else if better(v, h.vals[0], asc) {
			h.vals[0] = v
			heap.Fix(h, 0)
		}
	}
	kth := h.vals[0]
	return sqlLiteral(kth.String()), nil
}

// better reports whether a should replace b in the running top-K.
func better(a, b value.Value, asc bool) bool {
	if asc {
		return value.Compare(a, b) < 0
	}
	return value.Compare(a, b) > 0
}

// topKLocal selects the top K rows of rel ordered by orderCol.
func topKLocal(rel *Relation, orderCol string, k int, asc bool) (*Relation, error) {
	return topKLocalN(rel, orderCol, k, asc, 1)
}

// topKLocalN selects the top K rows with the heap work partitioned across
// workers goroutines: each worker keeps a K-bounded heap over its own row
// range, and the per-partition survivors merge through one final K-heap.
// Rows are ordered by (key, original row index) — a total order — so the
// selected set and its output order are identical for every worker count,
// including ties on the order column.
func topKLocalN(rel *Relation, orderCol string, k int, asc bool, workers int) (*Relation, error) {
	idx := rel.ColIndex(orderCol)
	if idx < 0 {
		return nil, fmt.Errorf("engine: order column %q not in %v", orderCol, rel.Cols)
	}
	sps := rowSpans(len(rel.Rows), workers)
	parts := make([][]topRow, len(sps))
	_ = runSpans(sps, func(w int, sp span) error {
		h := &topRowHeap{col: idx, asc: asc}
		for i := sp.lo; i < sp.hi; i++ {
			r := rel.Rows[i]
			if r[idx].IsNull() {
				continue
			}
			h.offer(topRow{idx: i, row: r}, k)
		}
		parts[w] = h.rows
		return nil
	})
	// Merge: the global top K under the total order is contained in the
	// union of the per-partition top Ks.
	final := &topRowHeap{col: idx, asc: asc}
	for _, rows := range parts {
		for _, tr := range rows {
			final.offer(tr, k)
		}
	}
	sort.Slice(final.rows, func(a, b int) bool {
		return final.before(final.rows[a], final.rows[b])
	})
	out := &Relation{Cols: rel.Cols, Rows: make([]Row, len(final.rows))}
	for i, tr := range final.rows {
		out.Rows[i] = tr.row
	}
	return out, nil
}

// topRow pairs a candidate row with its original index, the tie-breaker
// that makes the top-K selection a total order.
type topRow struct {
	idx int
	row Row
}

// topRowHeap keeps the K best topRows under (key, index) order: a max-heap
// of the kept set, rooted at the worst kept row.
type topRowHeap struct {
	rows []topRow
	col  int
	asc  bool
}

// before reports whether a outranks b: smaller key first when ascending,
// larger first when descending, earlier row index on key ties.
func (h *topRowHeap) before(a, b topRow) bool {
	c := value.Compare(a.row[h.col], b.row[h.col])
	if !h.asc {
		c = -c
	}
	if c != 0 {
		return c < 0
	}
	return a.idx < b.idx
}

// offer adds tr if the heap holds fewer than k rows or tr outranks the
// worst kept row.
func (h *topRowHeap) offer(tr topRow, k int) {
	if len(h.rows) < k {
		heap.Push(h, tr)
		return
	}
	if k > 0 && h.before(tr, h.rows[0]) {
		h.rows[0] = tr
		heap.Fix(h, 0)
	}
}

func (h *topRowHeap) Len() int           { return len(h.rows) }
func (h *topRowHeap) Less(i, j int) bool { return h.before(h.rows[j], h.rows[i]) } // max-heap
func (h *topRowHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *topRowHeap) Push(x any)         { h.rows = append(h.rows, x.(topRow)) }
func (h *topRowHeap) Pop() (out any) {
	out, h.rows = h.rows[len(h.rows)-1], h.rows[:len(h.rows)-1]
	return
}

// valueHeap orders values; asc=true makes it a min-heap.
type valueHeap struct {
	vals []value.Value
	asc  bool
}

func (h *valueHeap) Len() int { return len(h.vals) }
func (h *valueHeap) Less(i, j int) bool {
	c := value.Compare(h.vals[i], h.vals[j])
	if h.asc {
		return c < 0
	}
	return c > 0
}
func (h *valueHeap) Swap(i, j int) { h.vals[i], h.vals[j] = h.vals[j], h.vals[i] }
func (h *valueHeap) Push(x any)    { h.vals = append(h.vals, x.(value.Value)) }
func (h *valueHeap) Pop() (out any) {
	out, h.vals = h.vals[len(h.vals)-1], h.vals[:len(h.vals)-1]
	return
}
