package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pushdowndb/internal/obs"
)

// Span-tree shape tests: a traced query must produce a tree whose
// structure mirrors the execution (statement → plan → per-step joins →
// scans → decode → local operators) and whose row counts match the
// relation the query actually returned.

// threeTableDB builds the planner_test three-table fixture: cust(ck,bal),
// ords(ok,ck,price) from newTestDB plus items(iok,qty), at deployment
// scale so the planner picks pushdown strategies.
func threeTableDB(t *testing.T) (*DB, string) {
	t.Helper()
	db, st := newTestDB(t)
	var items [][]string
	for i := 0; i < 400; i++ {
		items = append(items, []string{intStr(i), intStr(i % 7)})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "items", []string{"iok", "qty"}, items, 2); err != nil {
		t.Fatal(err)
	}
	db.Sim = bigSim()
	sql := "SELECT COUNT(*) AS n, SUM(i.qty) AS q FROM cust c JOIN ords o ON c.ck = o.ck JOIN items i ON o.ok = i.iok WHERE c.bal <= -500"
	return db, sql
}

// spansWithPrefix collects every span whose name starts with the prefix.
func spansWithPrefix(d *obs.TraceData, prefix string) []*obs.SpanData {
	var out []*obs.SpanData
	d.Walk(func(sp *obs.SpanData, _ int) {
		if strings.HasPrefix(sp.Name, prefix) {
			out = append(out, sp)
		}
	})
	return out
}

func TestTraceThreeTableJoinShape(t *testing.T) {
	db, sql := threeTableDB(t)
	tr := obs.New("t1", "query")
	rel, e, err := db.QueryContext(obs.WithTrace(context.Background(), tr), sql)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	d := tr.Snapshot()

	// The statement span is the root's only child and carries the final
	// row count of the relation handed back to the caller.
	if n := len(d.Root.Children); n != 1 {
		t.Fatalf("root has %d children, want 1 (the statement span)", n)
	}
	sel := d.Root.Children[0]
	if sel.Name != "select" {
		t.Fatalf("statement span = %q, want select", sel.Name)
	}
	if rows, ok := sel.Int("rows"); !ok || rows != int64(len(rel.Rows)) {
		t.Errorf("select rows attr = %d (ok=%v), want %d", rows, ok, len(rel.Rows))
	}

	// Planning: a plan span with a probe per joined table.
	if sel.Find("plan") == nil {
		t.Error("no plan span under the statement")
	}
	probes := spansWithPrefix(d, "plan probe ")
	if len(probes) < 2 {
		t.Errorf("plan probe spans = %d, want >= 2 (one per estimated table)", len(probes))
	}

	// One join span per plan step, named in step order, carrying the
	// chosen strategy and the step's actual output rows.
	plan := e.QueryPlan()
	if plan == nil || len(plan.Steps) != 2 {
		t.Fatalf("plan = %+v, want 2 steps", plan)
	}
	for i, st := range plan.Steps {
		jsp := sel.Find(fmt.Sprintf("join %d", i+1))
		if jsp == nil {
			t.Fatalf("no span for join step %d", i+1)
		}
		if got, _ := jsp.Str("strategy"); got != st.Strategy {
			t.Errorf("join %d strategy attr = %q, want %q", i+1, got, st.Strategy)
		}
		if rows, ok := jsp.Int("rows"); !ok || rows != st.ActualRows {
			t.Errorf("join %d rows attr = %d (ok=%v), want %d", i+1, rows, ok, st.ActualRows)
		}
		if sec, ok := jsp.Float("sim_sec"); !ok || sec < 0 {
			t.Errorf("join %d sim_sec attr = %v (ok=%v)", i+1, sec, ok)
		}
	}

	// Scans: per-partition select spans with byte counts, and at least one
	// decode span where S3 Select output became a relation.
	parts := spansWithPrefix(d, "select ")
	if len(parts) == 0 {
		t.Error("no per-partition select spans")
	}
	var partBytes int64
	for _, sp := range parts {
		b, _ := sp.Int("bytes")
		partBytes += b
	}
	if partBytes <= 0 {
		t.Errorf("partition select spans carried %d bytes, want > 0", partBytes)
	}
	if len(spansWithPrefix(d, "decode")) == 0 {
		t.Error("no decode span")
	}

	// Local operators nest under a "local" span (the aggregate finisher).
	loc := sel.Find("local")
	if loc == nil {
		t.Fatal("no local span for the finishing operators")
	}
	if loc.Find("aggregate") == nil && loc.Find("groupby") == nil {
		t.Error("no aggregate/groupby operator span under local")
	}

	// Every span must have ended (non-negative duration measured at
	// Finish, not left dangling at snapshot time).
	d.Walk(func(sp *obs.SpanData, _ int) {
		if sp.DurUS < 0 {
			t.Errorf("span %q has negative duration %d", sp.Name, sp.DurUS)
		}
	})
}

// TestTraceConcurrentIsolation runs 8 traced queries at once against one
// DB and checks that no span leaks into the wrong trace: simple scans must
// never grow join spans, joins must keep theirs, and every statement span
// must report its own query's row count. Run under -race in CI.
func TestTraceConcurrentIsolation(t *testing.T) {
	db, joinSQL := threeTableDB(t)
	scanSQL := "SELECT COUNT(*) AS n FROM events WHERE v >= 0"

	type result struct {
		d    *obs.TraceData
		rows int
		join bool
	}
	results := make([]result, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			join := i%2 == 1
			sql := scanSQL
			if join {
				sql = joinSQL
			}
			tr := obs.New(fmt.Sprintf("q%d", i), "query")
			rel, _, err := db.QueryContext(obs.WithTrace(context.Background(), tr), sql)
			if err != nil {
				t.Error(err)
				return
			}
			tr.Finish()
			results[i] = result{d: tr.Snapshot(), rows: len(rel.Rows), join: join}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.d == nil {
			continue // query failed; already reported
		}
		if r.d.ID != fmt.Sprintf("q%d", i) {
			t.Errorf("trace %d carries id %q", i, r.d.ID)
		}
		if n := len(r.d.Root.Children); n != 1 {
			t.Errorf("trace %d: root has %d children, want 1", i, n)
			continue
		}
		sel := r.d.Root.Children[0]
		if rows, ok := sel.Int("rows"); !ok || rows != int64(r.rows) {
			t.Errorf("trace %d: rows attr = %d (ok=%v), want %d", i, rows, ok, r.rows)
		}
		hasJoin := sel.Find("join 1") != nil
		if hasJoin != r.join {
			t.Errorf("trace %d: join span present = %v, want %v — span tree interleaved", i, hasJoin, r.join)
		}
	}
}

// TestExplainAnalyzeThreeTable checks the ANALYZE render on a multi-join
// query: every plan step annotated with estimated and actual rows, cost
// and bytes, followed by the phase table and totals.
func TestExplainAnalyzeThreeTable(t *testing.T) {
	db, sql := threeTableDB(t)
	text, e, err := db.ExplainAnalyze(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if e == nil {
		t.Fatal("ExplainAnalyze returned no Exec")
	}
	for _, want := range []string{
		"EXPLAIN ANALYZE",
		"join plan (3 tables)",
		"join 1:", "join 2:",
		"strategy:",
		"rows:   est ~",
		"cost:   est",
		"bytes:  actual",
		"phases:",
		"totals:",
		"wall: ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	// Actuals were filled in, not left at the zero value.
	for i, st := range e.QueryPlan().Steps {
		if st.ActualSec <= 0 {
			t.Errorf("step %d ActualSec = %v, want > 0", i+1, st.ActualSec)
		}
		if st.ActualBytes <= 0 {
			t.Errorf("step %d ActualBytes = %v, want > 0", i+1, st.ActualBytes)
		}
	}
}

// TestExplainStatement runs EXPLAIN / EXPLAIN ANALYZE through the normal
// statement path, the way pushdownsql and the daemon reach it.
func TestExplainStatement(t *testing.T) {
	db, sql := threeTableDB(t)

	rel, e, err := db.ExecStatement(context.Background(), "EXPLAIN "+sql)
	if err != nil {
		t.Fatal(err)
	}
	if e != nil {
		t.Error("plain EXPLAIN must not execute (want nil Exec)")
	}
	if len(rel.Cols) != 1 || rel.Cols[0] != "plan" {
		t.Fatalf("EXPLAIN cols = %v", rel.Cols)
	}
	plain := relText(rel)
	if !strings.Contains(plain, "join plan (3 tables)") {
		t.Errorf("EXPLAIN render:\n%s", plain)
	}
	if strings.Contains(plain, "actual") {
		t.Errorf("plain EXPLAIN leaked actuals:\n%s", plain)
	}

	rel, e, err = db.ExecStatement(context.Background(), "EXPLAIN ANALYZE "+sql)
	if err != nil {
		t.Fatal(err)
	}
	if e == nil {
		t.Fatal("EXPLAIN ANALYZE must execute (want non-nil Exec)")
	}
	analyzed := relText(rel)
	if !strings.Contains(analyzed, "rows:   est ~") || !strings.Contains(analyzed, "wall: ") {
		t.Errorf("EXPLAIN ANALYZE render:\n%s", analyzed)
	}
}

func relText(rel *Relation) string {
	var b strings.Builder
	for _, r := range rel.Rows {
		b.WriteString(r[0].AsString())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestUntracedQueryNoSpans pins the zero-overhead contract: without a
// trace in context the query must not allocate any span machinery.
func TestUntracedQueryNoSpans(t *testing.T) {
	db, sql := threeTableDB(t)
	_, e, err := db.QueryContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if e.Trace() != nil {
		t.Error("untraced query grew a trace")
	}
	if e.Trace().Snapshot() != nil {
		t.Error("nil trace snapshot must be nil")
	}
}
