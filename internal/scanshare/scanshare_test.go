package scanshare

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pushdowndb/internal/csvx"
	"pushdowndb/internal/selectengine"
)

// testData builds the CSV object every test scans: k INT, g INT, v INT.
func testData() []byte {
	var rows [][]string
	for i := 0; i < 120; i++ {
		rows = append(rows, []string{
			fmt.Sprint(i), fmt.Sprint(i % 7), fmt.Sprint(i * 3),
		})
	}
	return csvx.Encode([]string{"k", "g", "v"}, rows)
}

// backend returns a SelectFunc over data that counts calls and records
// every pushed SQL.
func backend(data []byte, calls *atomic.Int64, sqls *[]string, mu *sync.Mutex) SelectFunc {
	return func(ctx context.Context, req selectengine.Request) (*selectengine.Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		calls.Add(1)
		if sqls != nil {
			mu.Lock()
			*sqls = append(*sqls, req.SQL)
			mu.Unlock()
		}
		return selectengine.Execute(data, req)
	}
}

func scanReq(sql string) selectengine.Request {
	return selectengine.Request{SQL: sql, HasHeader: true}
}

var testKey = ObjectKey{Backend: "s3", Bucket: "b", Object: "t/part0"}

// runConcurrent drives one coordinated Select per request from its own
// goroutine, released together, and returns the outcomes in request order.
func runConcurrent(t *testing.T, c *Coordinator, fn SelectFunc, key ObjectKey, reqs []selectengine.Request) []Outcome {
	t.Helper()
	outs := make([]Outcome, len(reqs))
	errs := make([]error, len(reqs))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req selectengine.Request) {
			defer wg.Done()
			<-start
			outs[i], errs[i] = c.Select(context.Background(), key, req, fn)
		}(i, req)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	return outs
}

// expectRows asserts an outcome's rows match a direct execution of req.
func expectRows(t *testing.T, data []byte, req selectengine.Request, out Outcome) {
	t.Helper()
	want, err := selectengine.Execute(data, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Res.Columns, want.Columns) {
		t.Fatalf("columns %v, want %v", out.Res.Columns, want.Columns)
	}
	if !reflect.DeepEqual(out.Res.Rows, want.Rows) {
		t.Fatalf("rows differ from direct execution:\n got %v\nwant %v", out.Res.Rows, want.Rows)
	}
}

func TestIdenticalRequestsCoalesce(t *testing.T) {
	data := testData()
	var calls atomic.Int64
	c := New(Config{Window: 200 * time.Millisecond, MaxBatch: 8})
	req := scanReq("SELECT k, v FROM S3Object WHERE g = 3")
	reqs := []selectengine.Request{req, req, req, req}
	outs := runConcurrent(t, c, backend(data, &calls, nil, nil), testKey, reqs)
	if got := calls.Load(); got != 1 {
		t.Fatalf("backend calls = %d, want 1", got)
	}
	leaders := 0
	for i, out := range outs {
		expectRows(t, data, req, out)
		if out.Sharers != 4 {
			t.Fatalf("outcome %d sharers = %d, want 4", i, out.Sharers)
		}
		if out.Merged {
			t.Fatalf("outcome %d unexpectedly merged", i)
		}
		if out.Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	st := c.Stats()
	if st.Selects != 4 || st.BackendSelects != 1 || st.Coalesced != 3 ||
		st.SharedPasses != 1 || st.MergedPasses != 0 || st.Sharers != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ScanBytesSaved != 3*int64(len(data)) {
		t.Fatalf("ScanBytesSaved = %d, want %d", st.ScanBytesSaved, 3*len(data))
	}
}

func TestPredicateMergeRoutesExactRows(t *testing.T) {
	data := testData()
	var (
		calls atomic.Int64
		sqls  []string
		mu    sync.Mutex
	)
	c := New(Config{Window: 200 * time.Millisecond, MaxBatch: 8})
	reqs := []selectengine.Request{
		scanReq("SELECT k, v FROM S3Object WHERE g = 1"),
		scanReq("SELECT k FROM S3Object WHERE g = 2"),
		scanReq("SELECT v, k FROM S3Object WHERE g = 3 AND v > 30"),
	}
	outs := runConcurrent(t, c, backend(data, &calls, &sqls, &mu), testKey, reqs)
	if got := calls.Load(); got != 1 {
		t.Fatalf("backend calls = %d, want 1 merged pass", got)
	}
	if len(sqls) != 1 || !strings.Contains(sqls[0], " OR ") {
		t.Fatalf("pushed SQL = %q, want one OR-merged statement", sqls)
	}
	for i, out := range outs {
		expectRows(t, data, reqs[i], out)
		if !out.Merged || out.Sharers != 3 {
			t.Fatalf("outcome %d = %+v, want merged with 3 sharers", i, out)
		}
		if out.LocalRows == 0 {
			t.Fatalf("outcome %d has no local re-filter rows", i)
		}
	}
	st := c.Stats()
	if st.MergedPasses != 1 || st.SharedPasses != 1 || st.Coalesced != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleflightOnlyModeDoesNotMerge(t *testing.T) {
	data := testData()
	var calls atomic.Int64
	c := New(Config{Window: -1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	fn := func(ctx context.Context, req selectengine.Request) (*selectengine.Result, error) {
		calls.Add(1)
		entered <- struct{}{}
		<-gate
		return selectengine.Execute(data, req)
	}
	reqA := scanReq("SELECT k FROM S3Object WHERE g = 1")
	reqB := scanReq("SELECT k FROM S3Object WHERE g = 2")
	var wg sync.WaitGroup
	outs := make([]Outcome, 3)
	run := func(i int, req selectengine.Request) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			outs[i], err = c.Select(context.Background(), testKey, req, fn)
			if err != nil {
				t.Error(err)
			}
		}()
	}
	run(0, reqA)
	<-entered // A's pass is in flight
	run(1, reqB)
	<-entered // B got its own pass: distinct predicates do not merge
	run(2, reqA)
	// Give the identical request time to join A's in-flight pass rather
	// than racing the gate release.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend calls = %d, want 2 (identical coalesces, distinct does not merge)", got)
	}
	if outs[0].Sharers != 2 || outs[2].Sharers != 2 {
		t.Fatalf("identical requests did not coalesce: %+v / %+v", outs[0], outs[2])
	}
	if outs[1].Sharers != 1 {
		t.Fatalf("distinct request unexpectedly shared: %+v", outs[1])
	}
	expectRows(t, data, reqA, outs[2])
}

func TestAggregatesCoalesceButNeverMerge(t *testing.T) {
	data := testData()
	var calls atomic.Int64
	c := New(Config{Window: 200 * time.Millisecond})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	fn := func(ctx context.Context, req selectengine.Request) (*selectengine.Result, error) {
		calls.Add(1)
		entered <- struct{}{}
		<-gate
		return selectengine.Execute(data, req)
	}
	req := scanReq("SELECT COUNT(*), SUM(v) FROM S3Object WHERE g < 4")
	var wg sync.WaitGroup
	outs := make([]Outcome, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			outs[i], err = c.Select(context.Background(), testKey, req, fn)
			if err != nil {
				t.Error(err)
			}
		}(i)
		if i == 0 {
			<-entered // aggregate passes fire immediately, no window wait
		}
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("backend calls = %d, want 1", got)
	}
	if outs[0].Merged || outs[1].Merged {
		t.Fatal("aggregate requests must never report a merged pass")
	}
	if outs[0].Sharers != 2 {
		t.Fatalf("sharers = %d, want 2", outs[0].Sharers)
	}
	expectRows(t, data, req, outs[1])
}

func TestInvalidationSplitsShares(t *testing.T) {
	data := testData()
	var calls atomic.Int64
	c := New(Config{Window: -1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	fn := func(ctx context.Context, req selectengine.Request) (*selectengine.Result, error) {
		calls.Add(1)
		entered <- struct{}{}
		<-gate
		return selectengine.Execute(data, req)
	}
	req := scanReq("SELECT k FROM S3Object WHERE g = 1")
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Select(context.Background(), testKey, req, fn); err != nil {
				t.Error(err)
			}
		}()
		if i == 0 {
			<-entered
			c.Invalidate() // the second arrival must not join the stale pass
		}
	}
	<-entered // the second arrival started its own pass
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend calls = %d, want 2 after Invalidate between arrivals", got)
	}

	// A differing cache-generation snapshot separates shares the same way.
	calls.Store(0)
	gate2 := make(chan struct{})
	fn2 := func(ctx context.Context, req selectengine.Request) (*selectengine.Result, error) {
		calls.Add(1)
		entered <- struct{}{}
		<-gate2
		return selectengine.Execute(data, req)
	}
	genKey := testKey
	for i := 0; i < 2; i++ {
		genKey.Gen = uint64(i + 1)
		wg.Add(1)
		go func(key ObjectKey) {
			defer wg.Done()
			if _, err := c.Select(context.Background(), key, req, fn2); err != nil {
				t.Error(err)
			}
		}(genKey)
		<-entered
	}
	close(gate2)
	wg.Wait()
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend calls = %d, want 2 for distinct generations", got)
	}
}

func TestMergedPassFailureFallsBackPerWaiter(t *testing.T) {
	data := testData()
	var calls atomic.Int64
	c := New(Config{Window: 200 * time.Millisecond})
	boom := errors.New("merged pass rejected")
	fn := func(ctx context.Context, req selectengine.Request) (*selectengine.Result, error) {
		calls.Add(1)
		if strings.Contains(req.SQL, " OR ") {
			return nil, boom
		}
		return selectengine.Execute(data, req)
	}
	reqs := []selectengine.Request{
		scanReq("SELECT k FROM S3Object WHERE g = 1"),
		scanReq("SELECT k FROM S3Object WHERE g = 2"),
	}
	outs := runConcurrent(t, c, fn, testKey, reqs)
	for i, out := range outs {
		expectRows(t, data, reqs[i], out)
		if out.Sharers != 1 || !out.Leader || out.Merged {
			t.Fatalf("fallback outcome %d = %+v, want a solo pass", i, out)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("backend calls = %d, want 3 (1 failed merged pass + 2 fallbacks)", got)
	}
	st := c.Stats()
	if st.Fallbacks != 2 {
		t.Fatalf("Fallbacks = %d, want 2", st.Fallbacks)
	}
}

func TestMaxBatchFiresEarly(t *testing.T) {
	data := testData()
	var calls atomic.Int64
	// A batch of 2 fills instantly; the pass must not wait out the long
	// window once full.
	c := New(Config{Window: time.Minute, MaxBatch: 2})
	reqs := []selectengine.Request{
		scanReq("SELECT k FROM S3Object WHERE g = 1"),
		scanReq("SELECT k FROM S3Object WHERE g = 2"),
	}
	start := time.Now()
	outs := runConcurrent(t, c, backend(data, &calls, nil, nil), testKey, reqs)
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("full batch waited %v, should have fired before the window", elapsed)
	}
	for i, out := range outs {
		expectRows(t, data, reqs[i], out)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("backend calls = %d, want 1", got)
	}
}

func TestMergeRequestShapes(t *testing.T) {
	mk := func(sql string) *entry {
		req := scanReq(sql)
		sel := mergeable(req)
		if sel == nil {
			t.Fatalf("test request %q is not mergeable", sql)
		}
		return &entry{req: req, sel: sel}
	}
	cases := []struct {
		name    string
		entries []*entry
		want    string
	}{
		{
			"column union with OR of filters",
			[]*entry{mk("SELECT a FROM S3Object WHERE b = 1"), mk("SELECT c FROM S3Object WHERE a = 2")},
			"SELECT a, b, c FROM S3Object WHERE (b = 1) OR (a = 2)",
		},
		{
			"case-insensitive column dedup",
			[]*entry{mk("SELECT A FROM S3Object WHERE a = 1"), mk("SELECT a FROM S3Object WHERE a = 2")},
			"SELECT A FROM S3Object WHERE (a = 1) OR (a = 2)",
		},
		{
			"star wins the projection",
			[]*entry{mk("SELECT * FROM S3Object WHERE a = 1"), mk("SELECT b FROM S3Object WHERE c = 2")},
			"SELECT * FROM S3Object WHERE (a = 1) OR (c = 2)",
		},
		{
			"unfiltered entry drops the WHERE",
			[]*entry{mk("SELECT a FROM S3Object"), mk("SELECT b FROM S3Object WHERE a = 1")},
			"SELECT a, b FROM S3Object",
		},
	}
	for _, tc := range cases {
		got := mergeRequest(tc.entries)
		if got.SQL != tc.want {
			t.Errorf("%s: merged SQL = %q, want %q", tc.name, got.SQL, tc.want)
		}
	}
}

func TestMergeableRejectsComplexShapes(t *testing.T) {
	for _, sql := range []string{
		"SELECT COUNT(*) FROM S3Object",
		"SELECT a FROM S3Object GROUP BY a",
		"SELECT a FROM S3Object ORDER BY a",
		"SELECT a FROM S3Object LIMIT 5",
	} {
		if mergeable(scanReq(sql)) != nil {
			t.Errorf("mergeable(%q) = non-nil, want nil", sql)
		}
	}
	if mergeable(selectengine.Request{
		SQL: "SELECT a FROM S3Object", HasHeader: true,
		ScanRange: &selectengine.ScanRange{Start: 0, End: 10},
	}) != nil {
		t.Error("ranged scans must not merge")
	}
	if mergeable(scanReq("SELECT a + 1, b FROM S3Object WHERE a < 3")) == nil {
		t.Error("non-aggregate expressions are merge-eligible")
	}
}

func TestFingerprintSeparatesRequestParameters(t *testing.T) {
	base := scanReq("SELECT a FROM S3Object")
	variants := []selectengine.Request{
		base,
		{SQL: base.SQL},
		{SQL: base.SQL, HasHeader: true, Capabilities: selectengine.Capabilities{AllowGroupBy: true}},
		{SQL: base.SQL, HasHeader: true, ScanRange: &selectengine.ScanRange{Start: 0, End: 9}},
	}
	seen := map[string]int{}
	for i, req := range variants {
		fp := Fingerprint(req)
		if j, dup := seen[fp]; dup {
			t.Fatalf("requests %d and %d share fingerprint %q", j, i, fp)
		}
		seen[fp] = i
	}
}
