// Package scanshare coalesces concurrent S3 Selects into shared storage
// passes. PushdownDB prices every query's pushed-down scans independently,
// so under server concurrency many in-flight queries pay full request/
// scan/transfer cost for the same partitions; SharedDB-style multi-query
// execution (and the "Enhancing Computation Pushdown" follow-up) share one
// storage pass across consumers instead. The Coordinator sits between
// engine.Exec and s3api.Backend and shares passes two ways:
//
//   - Singleflight: concurrent identical requests against the same
//     (backend, bucket, object, canonical request) join one in-flight
//     backend call whose response fans out to every waiter. This covers
//     every request shape, including aggregates and ranged scans.
//
//   - Predicate merging: within a short batching window, compatible
//     simple scans on the same object (projection + disjunction-mergeable
//     WHERE, no aggregates/joins/order/limit) combine into ONE pushed
//     Select carrying the OR of the filters and the union of the
//     referenced columns. Each waiter's own SQL is then re-applied
//     locally over the merged response, which is exact: the merged pass
//     returns the raw referenced columns verbatim, so re-executing the
//     original request over them reproduces the direct answer
//     byte-for-byte.
//
// Cost attribution is the caller's job: the Outcome reports the pass
// stats, the final sharer count and the local re-filter row volume, and
// the engine meters one pass split across sharers
// (cloudsim.Phase.AddSharedSelectRequest).
//
// Invalidation composes two ways: the coordinator key carries the result
// cache's generation snapshot for the object (so a table reload separates
// pre- and post-reload sharers even mid-flight), and Invalidate bumps a
// coordinator-wide epoch for cacheless deployments.
package scanshare

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pushdowndb/internal/csvx"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
)

// SelectFunc issues one real backend Select. The coordinator never talks
// to storage itself; the engine passes a closure binding the backend,
// bucket and object so metering scope stays with the engine.
type SelectFunc func(ctx context.Context, req selectengine.Request) (*selectengine.Result, error)

// ObjectKey identifies the object a request scans, plus the result-cache
// generation the caller snapshotted for it (zero without a cache): shares
// never straddle an invalidation.
type ObjectKey struct {
	Backend string
	Bucket  string
	Object  string
	Gen     uint64
}

// Config tunes the coordinator.
type Config struct {
	// Window is how long the first mergeable request on an object waits
	// for companions before firing. Zero uses DefaultWindow; negative
	// disables predicate merging entirely (singleflight only).
	Window time.Duration
	// MaxBatch bounds how many distinct requests merge into one pass
	// (default 16); a full batch fires before the window closes.
	MaxBatch int
	// MaxSQLBytes bounds the merged SQL's size (default
	// selectengine.MaxSQLBytes, the S3 Select expression limit).
	MaxSQLBytes int
}

// DefaultWindow is the batching window used when Config.Window is zero:
// long enough for a barrier of concurrent queries fanning out over the
// same partitions to meet, short next to any real storage round trip.
const DefaultWindow = 2 * time.Millisecond

// Outcome is what one coordinated Select produced for its caller.
type Outcome struct {
	// Res is the caller's result: the shared response verbatim for
	// singleflight shares, the locally re-filtered rows for merged ones.
	Res *selectengine.Result
	// Sharers is how many requests shared the backend pass (1 = solo).
	// Every sharer of one pass observes the same final count, so a
	// pass's cost splits exactly once across them.
	Sharers int
	// Leader is true for exactly one sharer per pass — the caller that
	// issued the backend request (cache fills belong to it).
	Leader bool
	// Merged reports whether the pass pushed a combined OR/union request
	// rather than this caller's request verbatim.
	Merged bool
	// Pass is the backend pass's stats (what storage actually did), as
	// opposed to Res.Stats which describes the caller's slice of it.
	Pass selectengine.Stats
	// LocalRows is how many merged-response rows this caller re-filtered
	// locally (0 for unmerged shares) — priced at local row-work rates.
	LocalRows int64
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	// Selects counts requests entering the coordinator.
	Selects int64 `json:"selects"`
	// BackendSelects counts real backend calls issued (shared passes,
	// solo passes and per-waiter fallbacks).
	BackendSelects int64 `json:"backend_selects"`
	// Coalesced counts requests served by a pass some other request paid
	// the backend call for (sharers-1 per shared pass).
	Coalesced int64 `json:"coalesced"`
	// SharedPasses counts backend passes with more than one sharer;
	// MergedPasses counts the subset that pushed a combined OR/union
	// request. Sharers sums sharer counts over shared passes, so
	// Sharers/SharedPasses is the average fan-out per shared pass.
	SharedPasses int64 `json:"shared_passes"`
	MergedPasses int64 `json:"merged_passes"`
	Sharers      int64 `json:"sharers"`
	// ScanBytesSaved and ReturnBytesSaved estimate the storage traffic
	// sharing avoided: (sharers-1) x the pass's scan/return volume, i.e.
	// what the extra sharers would have re-bought running alone.
	ScanBytesSaved   int64 `json:"scan_bytes_saved"`
	ReturnBytesSaved int64 `json:"return_bytes_saved"`
	// Fallbacks counts waiters that re-issued their own request directly
	// after a shared pass (or their slice of it) failed.
	Fallbacks int64 `json:"fallbacks"`
}

// Coordinator batches and coalesces Selects. Safe for concurrent use.
type Coordinator struct {
	cfg   Config
	epoch atomic.Uint64 // bumped by Invalidate; part of every share key

	mu       sync.Mutex
	inflight map[identity]*call // joinable until the pass completes
	open     map[objIdent]*call // un-fired mergeable batches
	stats    Stats
}

// identity is the singleflight join key: one exact request on one object
// at one invalidation epoch.
type identity struct {
	obj objIdent
	fp  string
}

// objIdent is the batching key: one object at one epoch.
type objIdent struct {
	key   ObjectKey
	epoch uint64
}

// New returns a coordinator with cfg's zero fields defaulted.
func New(cfg Config) *Coordinator {
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.MaxSQLBytes <= 0 {
		cfg.MaxSQLBytes = selectengine.MaxSQLBytes
	}
	return &Coordinator{
		cfg:      cfg,
		inflight: map[identity]*call{},
		open:     map[objIdent]*call{},
	}
}

// Invalidate voids the coordinator's share space: requests arriving after
// the call can no longer join passes started before it. In-flight passes
// complete for their existing waiters (their data predates the
// invalidation for all of them equally). The engine calls this from
// InvalidateStats/InvalidateTable alongside the result-cache bump.
func (c *Coordinator) Invalidate() { c.epoch.Add(1) }

// Stats snapshots the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// call is one backend pass in progress, shared by every request that
// joined it.
type call struct {
	done    chan struct{} // closed after results are routed
	full    chan struct{} // closed when the batch hits MaxBatch
	entries []*entry      // distinct requests, arrival order
	byFP    map[string]*entry
	fired   bool // merged/solo request issued; batch membership is frozen
	merged  bool
	sqlLen  int // accumulated merged-SQL size estimate

	// Completion state, written once before close(done).
	err     error
	pass    selectengine.Stats
	sharers int
	// leaderTaken hands the Leader outcome to exactly one waiter (the
	// cache fill belongs to it).
	leaderTaken bool
}

// entry is one distinct request inside a call, with however many waiters
// coalesced onto it.
type entry struct {
	req     selectengine.Request
	sel     *sqlparse.Select // parsed form; nil when not merge-eligible
	waiters int

	res       *selectengine.Result
	err       error
	localRows int64
}

// Fingerprint renders the canonical identity of a select request: the SQL
// plus every request parameter that changes the response. It matches the
// engine's result-cache fingerprint so a coordinator share and a cache
// entry describe the same response.
func Fingerprint(req selectengine.Request) string {
	var b strings.Builder
	b.WriteString(req.SQL)
	b.WriteString("\x00h=")
	b.WriteString(boolTag(req.HasHeader))
	b.WriteString("\x00g=")
	b.WriteString(boolTag(req.Capabilities.AllowGroupBy))
	b.WriteString("\x00b=")
	b.WriteString(boolTag(req.Capabilities.AllowBloomContains))
	if req.ScanRange != nil {
		b.WriteString("\x00r=")
		b.WriteString(strconv.FormatInt(req.ScanRange.Start, 10))
		b.WriteString("-")
		b.WriteString(strconv.FormatInt(req.ScanRange.End, 10))
	}
	return b.String()
}

func boolTag(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

// mergeable parses req and reports whether it can participate in a
// predicate-merged pass: a plain single-table scan — arbitrary
// non-aggregate projections and an optional WHERE — with no join, group,
// order, limit or scan range. Everything such a query produces is a pure
// function of its referenced input columns, which the merged pass carries
// verbatim, so local re-execution is exact.
func mergeable(req selectengine.Request) *sqlparse.Select {
	if req.ScanRange != nil || !req.HasHeader {
		return nil
	}
	sel, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return nil
	}
	if len(sel.Joins) > 0 || len(sel.GroupBy) > 0 || len(sel.OrderBy) > 0 || sel.Limit >= 0 {
		return nil
	}
	if sel.HasAggregates() {
		return nil
	}
	return sel
}

// compatible reports whether a new mergeable request can batch with the
// call's existing entries: same header mode and capability set (they are
// part of the response semantics) and same pushed table term.
func compatible(c *call, req selectengine.Request, sel *sqlparse.Select) bool {
	first := c.entries[0]
	if first.sel == nil {
		return false
	}
	return req.HasHeader == first.req.HasHeader &&
		req.Capabilities == first.req.Capabilities &&
		strings.EqualFold(sel.Table, first.sel.Table)
}

// mergedSQLLen estimates a request's contribution to the merged SQL.
func mergedSQLLen(sel *sqlparse.Select) int {
	n := 16
	if sel.Where != nil {
		n += len(sel.Where.String()) + 8
	}
	for _, it := range sel.Items {
		n += len(it.Expr.String()) + 2
	}
	return n
}

// Select coordinates one request: it joins an identical in-flight pass,
// joins an open batch on the same object, or starts a new pass (waiting
// out the batching window when the request is merge-eligible). The
// returned Outcome carries the caller's rows plus the pass accounting.
// On any shared-pass failure every waiter falls back to its own direct
// backend call, so a sharer never fares worse than running alone.
func (c *Coordinator) Select(ctx context.Context, key ObjectKey, req selectengine.Request, fn SelectFunc) (Outcome, error) {
	fp := Fingerprint(req)
	obj := objIdent{key: key, epoch: c.epoch.Load()}
	id := identity{obj: obj, fp: fp}
	var sel *sqlparse.Select
	if c.cfg.Window > 0 {
		sel = mergeable(req)
	}

	c.mu.Lock()
	c.stats.Selects++
	// Join an identical request already in flight (fired or not).
	if cl, ok := c.inflight[id]; ok {
		ent := cl.byFP[fp]
		ent.waiters++
		c.mu.Unlock()
		return c.wait(ctx, cl, ent, req, fn)
	}
	// Join an open batch on the same object with a new predicate.
	if cl, ok := c.open[obj]; ok && sel != nil && !cl.fired &&
		len(cl.entries) < c.cfg.MaxBatch &&
		cl.sqlLen+mergedSQLLen(sel) < c.cfg.MaxSQLBytes/2 &&
		compatible(cl, req, sel) {
		ent := &entry{req: req, sel: sel, waiters: 1}
		cl.entries = append(cl.entries, ent)
		cl.byFP[fp] = ent
		cl.sqlLen += mergedSQLLen(sel)
		c.inflight[id] = cl
		if len(cl.entries) >= c.cfg.MaxBatch {
			close(cl.full)
		}
		c.mu.Unlock()
		return c.wait(ctx, cl, ent, req, fn)
	}
	// Start a new pass, leading it.
	cl := &call{
		done: make(chan struct{}),
		full: make(chan struct{}),
		byFP: map[string]*entry{},
	}
	ent := &entry{req: req, sel: sel, waiters: 1}
	cl.entries = []*entry{ent}
	cl.byFP[fp] = ent
	if sel != nil {
		cl.sqlLen = mergedSQLLen(sel)
	}
	c.inflight[id] = cl
	// Register as an open batch only when another request could actually
	// join it (merging on, batch bigger than one).
	batching := sel != nil && c.cfg.MaxBatch > 1
	if batching {
		c.open[obj] = cl
	}
	c.mu.Unlock()

	c.lead(ctx, obj, cl, fn, batching)
	return c.wait(ctx, cl, ent, req, fn)
}

// lead runs the pass: wait out the batching window (mergeable passes
// only), freeze the batch, issue one backend call, route rows to every
// entry and publish the completion.
func (c *Coordinator) lead(ctx context.Context, obj objIdent, cl *call, fn SelectFunc, batching bool) {
	if batching {
		timer := time.NewTimer(c.cfg.Window)
		select {
		case <-timer.C:
		case <-cl.full:
		case <-ctx.Done():
		}
		timer.Stop()
	}

	// Freeze the batch: no new entries may join, fp joins may continue
	// until completion.
	c.mu.Lock()
	cl.fired = true
	if c.open[obj] == cl {
		delete(c.open, obj)
	}
	entries := make([]*entry, len(cl.entries))
	copy(entries, cl.entries)
	c.mu.Unlock()

	var (
		res *selectengine.Result
		err error
	)
	if len(entries) == 1 {
		// Solo pass (possibly with many identical waiters): push the
		// request verbatim.
		res, err = fn(ctx, entries[0].req)
		if err == nil {
			entries[0].res = res
		}
	} else {
		merged := mergeRequest(entries)
		cl.merged = true
		res, err = fn(ctx, merged)
		if err == nil {
			// Route rows: re-execute each entry's own SQL over the merged
			// response. The merged pass returned every referenced column
			// verbatim, so this reproduces each direct answer exactly.
			data := csvx.Encode(res.Columns, res.Rows)
			for _, ent := range entries {
				sub, subErr := selectengine.Execute(data, selectengine.Request{
					SQL: ent.req.SQL, HasHeader: true, Capabilities: ent.req.Capabilities,
				})
				if subErr != nil {
					ent.err = subErr
					continue
				}
				ent.res = sub
				ent.localRows = int64(len(res.Rows))
			}
		}
	}

	// Publish: seal joins (remove from the maps), snapshot the sharer
	// count — consistent for every waiter — then wake them.
	c.mu.Lock()
	cl.err = err
	if err == nil {
		cl.pass = res.Stats
	}
	for fp, ent := range cl.byFP {
		if c.inflight[identity{obj: obj, fp: fp}] == cl {
			delete(c.inflight, identity{obj: obj, fp: fp})
		}
		cl.sharers += ent.waiters
	}
	c.stats.BackendSelects++
	if cl.sharers > 1 {
		c.stats.SharedPasses++
		c.stats.Sharers += int64(cl.sharers)
		c.stats.Coalesced += int64(cl.sharers - 1)
		if err == nil {
			c.stats.ScanBytesSaved += int64(cl.sharers-1) * res.Stats.BytesScanned
			c.stats.ReturnBytesSaved += int64(cl.sharers-1) * res.Stats.BytesReturned
		}
	}
	if cl.merged {
		c.stats.MergedPasses++
	}
	c.mu.Unlock()
	close(cl.done)
}

// wait blocks until the call completes, then assembles the caller's
// Outcome — falling back to a direct backend call when the pass or this
// entry's slice of it failed.
func (c *Coordinator) wait(ctx context.Context, cl *call, ent *entry, req selectengine.Request, fn SelectFunc) (Outcome, error) {
	<-cl.done
	if cl.err != nil || ent.err != nil {
		return c.fallback(ctx, req, fn)
	}
	leader := false
	c.mu.Lock()
	if !cl.leaderTaken {
		cl.leaderTaken = true
		leader = true
	}
	c.mu.Unlock()
	return Outcome{
		Res:       ent.res,
		Sharers:   cl.sharers,
		Leader:    leader,
		Merged:    cl.merged,
		Pass:      cl.pass,
		LocalRows: ent.localRows,
	}, nil
}

// fallback re-issues the caller's own request directly after a shared
// pass failed for it; the result is exactly a solo pass.
func (c *Coordinator) fallback(ctx context.Context, req selectengine.Request, fn SelectFunc) (Outcome, error) {
	c.mu.Lock()
	c.stats.Fallbacks++
	c.stats.BackendSelects++
	c.mu.Unlock()
	res, err := fn(ctx, req)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Res: res, Sharers: 1, Leader: true, Pass: res.Stats}, nil
}

// mergeRequest builds the one pushed Select standing in for every entry:
// the union of the referenced columns (star if any entry projects star)
// and the OR of the filters (no WHERE if any entry scans unfiltered).
func mergeRequest(entries []*entry) selectengine.Request {
	var (
		cols    []string
		seen    = map[string]bool{}
		star    bool
		wheres  []string
		allHave = true
	)
	addCol := func(name string) {
		lc := strings.ToLower(name)
		if !seen[lc] {
			seen[lc] = true
			cols = append(cols, name)
		}
	}
	for _, ent := range entries {
		for _, it := range ent.sel.Items {
			if _, isStar := it.Expr.(*sqlparse.Star); isStar {
				star = true
				continue
			}
			for _, col := range sqlparse.Columns(it.Expr) {
				addCol(col)
			}
		}
		if ent.sel.Where == nil {
			allHave = false
		} else {
			// Binary expressions print fully parenthesized and OR binds
			// loosest, so joining printed filters with OR is precedence-safe.
			wheres = append(wheres, ent.sel.Where.String())
			for _, col := range sqlparse.Columns(ent.sel.Where) {
				addCol(col)
			}
		}
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if star || len(cols) == 0 {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(cols, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(entries[0].sel.Table)
	if allHave && len(wheres) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(wheres, " OR "))
	}
	return selectengine.Request{
		SQL:          b.String(),
		HasHeader:    entries[0].req.HasHeader,
		Capabilities: entries[0].req.Capabilities,
	}
}
