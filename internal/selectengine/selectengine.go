// Package selectengine executes S3 Select requests against object payloads.
// It implements the restricted SQL surface AWS S3 Select offered when the
// paper was written (Section II-A): selection, projection and aggregation
// without group-by over CSV or columnar ("Parquet") objects, a 256 KB
// expression-size limit, LIMIT with early scan termination, and results
// that are always re-encoded as CSV regardless of the input format (the
// behaviour behind the paper's Fig. 11 observation).
//
// Extensions the paper proposes in Section X are available behind
// Capabilities flags so ablation benchmarks can compare with/without:
// partial GROUP BY (Suggestion 4) and the BLOOM_CONTAINS bitwise Bloom
// probe (Suggestion 3).
package selectengine

import (
	"errors"
	"fmt"
	"strings"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/expr"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// MaxSQLBytes is S3 Select's SQL expression size limit (Section V-B1).
const MaxSQLBytes = 256 * 1024

// Capabilities toggles the Section-X extensions.
type Capabilities struct {
	// AllowGroupBy enables partial server-side GROUP BY (Suggestion 4).
	AllowGroupBy bool
	// AllowBloomContains enables the BLOOM_CONTAINS function
	// (Suggestion 3). Without it, Bloom predicates must be expressed with
	// the SUBSTRING-over-'0'/'1'-string encoding the paper uses.
	AllowBloomContains bool
}

// Intersect returns the capabilities allowed by both sets. Storage
// backends use it to clamp a request's asked-for extensions to what they
// actually execute.
func (c Capabilities) Intersect(o Capabilities) Capabilities {
	return Capabilities{
		AllowGroupBy:       c.AllowGroupBy && o.AllowGroupBy,
		AllowBloomContains: c.AllowBloomContains && o.AllowBloomContains,
	}
}

// ErrUnsupported marks a rejection caused by a capability the select
// engine was not granted (a Section-X extension that is switched off),
// as opposed to malformed SQL. Capability rejections wrap it so backends
// can classify them (s3api.KindUnsupported) without string matching.
var ErrUnsupported = errors.New("capability not enabled")

// Request is one S3 Select invocation.
type Request struct {
	SQL          string
	HasHeader    bool // CSV: first row is the header (FileHeaderInfo=USE)
	Capabilities Capabilities
	// ScanRange restricts a CSV scan to rows starting within the byte
	// range [Start, End). Mirrors S3 Select's ScanRange parameter; used by
	// the sampling top-K operator to sample random chunks.
	ScanRange *ScanRange
}

// ScanRange is a half-open byte range.
type ScanRange struct {
	Start, End int64
}

// Stats describes what a request consumed — the inputs to the cost and
// time model.
type Stats struct {
	BytesScanned  int64 // object bytes the storage side had to read
	BytesReturned int64 // encoded CSV result bytes
	RowsScanned   int64
	RowsReturned  int64
	ExprNodes     int64 // per-row expression AST nodes (storage compute)
	// CellsDecoded counts column values the storage side materialized:
	// CSV scans decode every column of every row; columnar scans decode
	// only the referenced columns. This is what makes Parquet's advantage
	// large for narrow queries over wide tables (Fig. 11) and modest for
	// TPC-H (Section IX).
	CellsDecoded int64
	// DecompressBytes is the raw size of compressed chunks the columnar
	// reader had to inflate.
	DecompressBytes int64
}

// Result holds the response rows. Fields are strings because S3 Select
// always returns CSV text.
type Result struct {
	Columns []string
	Rows    [][]string
	Stats   Stats
	// Columnar reports that the scanned object was in the columnar
	// format. The planner's stats probe reads it to learn a table's
	// storage format without issuing any extra request.
	Columnar bool
}

// Execute runs the request against one object payload.
func Execute(data []byte, req Request) (*Result, error) {
	if len(req.SQL) > MaxSQLBytes {
		return nil, fmt.Errorf("selectengine: SQL expression is %d bytes; limit is %d", len(req.SQL), MaxSQLBytes)
	}
	sel, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return nil, err
	}
	if err := validate(sel, req.Capabilities); err != nil {
		return nil, err
	}
	if colformat.IsColumnar(data) {
		if req.ScanRange != nil {
			return nil, fmt.Errorf("selectengine: ScanRange is only supported for CSV objects")
		}
		return executeColumnar(data, sel, req)
	}
	return executeCSV(data, sel, req)
}

func validate(sel *sqlparse.Select, caps Capabilities) error {
	if len(sel.Joins) > 0 {
		return fmt.Errorf("selectengine: JOIN is not supported by S3 Select (single-object queries only)")
	}
	if len(sel.OrderBy) > 0 {
		return fmt.Errorf("selectengine: ORDER BY is not supported by S3 Select")
	}
	if len(sel.GroupBy) > 0 && !caps.AllowGroupBy {
		return fmt.Errorf("selectengine: GROUP BY is not supported by S3 Select (enable Capabilities.AllowGroupBy for the Suggestion-4 extension): %w", ErrUnsupported)
	}
	hasAgg := sel.HasAggregates()
	if hasAgg && len(sel.GroupBy) == 0 {
		for _, it := range sel.Items {
			if _, isStar := it.Expr.(*sqlparse.Star); isStar {
				return fmt.Errorf("selectengine: cannot mix * with aggregates")
			}
			if !sqlparse.ContainsAggregate(it.Expr) && !isConstant(it.Expr) {
				return fmt.Errorf("selectengine: aggregation without GROUP BY cannot select bare columns")
			}
		}
	}
	if !caps.AllowBloomContains {
		if containsCallNamed(sel, "BLOOM_CONTAINS") {
			return fmt.Errorf("selectengine: BLOOM_CONTAINS requires Capabilities.AllowBloomContains (Suggestion 3): %w", ErrUnsupported)
		}
	}
	return nil
}

func isConstant(e sqlparse.Expr) bool {
	return len(sqlparse.Columns(e)) == 0 && !sqlparse.ContainsAggregate(e)
}

func containsCallNamed(sel *sqlparse.Select, name string) bool {
	found := false
	var walk func(sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		if found || e == nil {
			return
		}
		switch t := e.(type) {
		case *sqlparse.Call:
			if t.Name == name {
				found = true
				return
			}
			for _, a := range t.Args {
				walk(a)
			}
		case *sqlparse.Binary:
			walk(t.L)
			walk(t.R)
		case *sqlparse.Unary:
			walk(t.X)
		case *sqlparse.Case:
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(t.Else)
		case *sqlparse.Cast:
			walk(t.X)
		case *sqlparse.Aggregate:
			walk(t.X)
		case *sqlparse.Between:
			walk(t.X)
			walk(t.Lo)
			walk(t.Hi)
		case *sqlparse.In:
			walk(t.X)
			for _, a := range t.List {
				walk(a)
			}
		case *sqlparse.Like:
			walk(t.X)
			walk(t.Pattern)
		case *sqlparse.IsNull:
			walk(t.X)
		}
	}
	for _, it := range sel.Items {
		walk(it.Expr)
	}
	walk(sel.Where)
	for _, g := range sel.GroupBy {
		walk(g)
	}
	return found
}

// CountNodes estimates per-row expression evaluation work: the number of
// AST nodes in WHERE plus the select list. This feeds the cloudsim
// storage-compute term.
func CountNodes(sel *sqlparse.Select) int64 {
	var n int64
	var walk func(sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		if e == nil {
			return
		}
		n++
		switch t := e.(type) {
		case *sqlparse.Binary:
			walk(t.L)
			walk(t.R)
		case *sqlparse.Unary:
			walk(t.X)
		case *sqlparse.Case:
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(t.Else)
		case *sqlparse.Cast:
			walk(t.X)
		case *sqlparse.Call:
			for _, a := range t.Args {
				walk(a)
			}
		case *sqlparse.Aggregate:
			walk(t.X)
		case *sqlparse.Between:
			walk(t.X)
			walk(t.Lo)
			walk(t.Hi)
		case *sqlparse.In:
			walk(t.X)
			for _, a := range t.List {
				walk(a)
			}
		case *sqlparse.Like:
			walk(t.X)
			walk(t.Pattern)
		case *sqlparse.IsNull:
			walk(t.X)
		}
	}
	for _, it := range sel.Items {
		walk(it.Expr)
	}
	walk(sel.Where)
	for _, g := range sel.GroupBy {
		walk(g)
	}
	return n
}

// rowEnv adapts a CSV row to the expression evaluator. All fields are
// strings, exactly as S3 Select sees CSV data.
type rowEnv struct {
	index  map[string]int
	fields []string
}

func (r *rowEnv) Lookup(_, name string) (value.Value, bool) {
	i, ok := r.index[strings.ToLower(name)]
	if !ok {
		return value.Null(), false
	}
	if i >= len(r.fields) {
		return value.Null(), true
	}
	f := r.fields[i]
	if f == "" {
		return value.Null(), true
	}
	return value.Str(f), true
}

func headerIndex(header []string) map[string]int {
	m := make(map[string]int, len(header)*2)
	for i, h := range header {
		m[strings.ToLower(h)] = i
	}
	for i := range header {
		m[fmt.Sprintf("_%d", i+1)] = i // S3 Select positional names
	}
	return m
}

func executeCSV(data []byte, sel *sqlparse.Select, req Request) (*Result, error) {
	ev := expr.New()
	nodes := CountNodes(sel)

	sc := csvx.NewScanner(data)
	var header []string
	if req.HasHeader {
		if !sc.Scan() {
			return &Result{Stats: Stats{ExprNodes: nodes}}, sc.Err()
		}
		header = append(header, sc.Fields()...)
	}
	env := &rowEnv{index: headerIndex(header)}

	exec, err := newExecutor(sel, ev, header)
	if err != nil {
		return nil, err
	}

	var stats Stats
	stats.ExprNodes = nodes
	start := int64(0)
	if req.ScanRange != nil {
		start = req.ScanRange.Start
	}
	var lastScannedEnd int64
	for sc.Scan() {
		first, last := sc.Range()
		if req.ScanRange != nil {
			if first < req.ScanRange.Start {
				continue
			}
			if first >= req.ScanRange.End {
				break
			}
		}
		lastScannedEnd = last + 1
		stats.RowsScanned++
		stats.CellsDecoded += int64(len(sc.Fields()))
		env.fields = sc.Fields()
		done, err := exec.row(env)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	switch {
	case req.ScanRange != nil:
		// Only the bytes within the range had to be read.
		if lastScannedEnd > start {
			stats.BytesScanned = lastScannedEnd - start
		}
	case exec.terminatedEarly:
		// LIMIT terminated the scan early; S3 charges only what was read.
		stats.BytesScanned = lastScannedEnd
	default:
		stats.BytesScanned = int64(len(data))
	}
	return exec.finish(&stats)
}

func executeColumnar(data []byte, sel *sqlparse.Select, req Request) (*Result, error) {
	r, err := colformat.Open(data)
	if err != nil {
		return nil, err
	}
	schema := r.Schema()
	header := make([]string, len(schema))
	for i, c := range schema {
		header[i] = c.Name
	}
	ev := expr.New()
	exec, err := newExecutor(sel, ev, header)
	if err != nil {
		return nil, err
	}

	// Column pruning: only the referenced columns are read.
	needed := neededColumns(sel, header)
	var stats Stats
	stats.ExprNodes = CountNodes(sel)
	// The footer always has to be read.
	stats.BytesScanned = footerBytes(data)

	env := &colEnv{index: headerIndex(header)}
scan:
	for g := 0; g < r.NumRowGroups(); g++ {
		if skipGroup(r, g, sel.Where, env.index) {
			continue
		}
		cols := make(map[int][]value.Value, len(needed))
		for _, ci := range needed {
			vals, n, err := r.ReadColumn(g, ci)
			if err != nil {
				return nil, err
			}
			cols[ci] = vals
			stats.BytesScanned += n
			stats.DecompressBytes += r.ChunkRawLen(g, ci)
		}
		nRows := r.GroupRows(g)
		for i := 0; i < nRows; i++ {
			stats.RowsScanned++
			stats.CellsDecoded += int64(len(needed))
			env.cols = cols
			env.row = i
			env.nCols = len(header)
			done, err := exec.row(env)
			if err != nil {
				return nil, err
			}
			if done {
				break scan
			}
		}
	}
	res, err := exec.finish(&stats)
	if err != nil {
		return nil, err
	}
	res.Columnar = true
	return res, nil
}

func footerBytes(data []byte) int64 {
	// Footer length is encoded 13 bytes from the end (8-byte length +
	// 5-byte magic); include both in the scan accounting.
	if len(data) < 13 {
		return int64(len(data))
	}
	return 13
}

func neededColumns(sel *sqlparse.Select, header []string) []int {
	idx := headerIndex(header)
	seen := map[int]bool{}
	var out []int
	add := func(names []string) {
		for _, n := range names {
			if i, ok := idx[strings.ToLower(n)]; ok && !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	for _, it := range sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			for i := range header {
				if !seen[i] {
					seen[i] = true
					out = append(out, i)
				}
			}
			continue
		}
		add(sqlparse.Columns(it.Expr))
	}
	if sel.Where != nil {
		add(sqlparse.Columns(sel.Where))
	}
	for _, g := range sel.GroupBy {
		add(sqlparse.Columns(g))
	}
	return out
}

// skipGroup prunes a row group when WHERE is a simple comparison against a
// literal and the chunk min/max statistics prove no row matches.
func skipGroup(r *colformat.Reader, g int, where sqlparse.Expr, idx map[string]int) bool {
	cmp, ok := where.(*sqlparse.Binary)
	if !ok {
		return false
	}
	col, okc := cmp.L.(*sqlparse.Column)
	lit, okl := cmp.R.(*sqlparse.Literal)
	if !okc || !okl {
		return false
	}
	ci, ok := idx[strings.ToLower(col.Name)]
	if !ok {
		return false
	}
	mn, mx, ok := r.ChunkStats(g, ci)
	if !ok {
		return false
	}
	v := lit.Val
	switch cmp.Op {
	case sqlparse.OpEq:
		return value.Compare(v, mn) < 0 || value.Compare(v, mx) > 0
	case sqlparse.OpLt:
		return value.Compare(mn, v) >= 0
	case sqlparse.OpLe:
		return value.Compare(mn, v) > 0
	case sqlparse.OpGt:
		return value.Compare(mx, v) <= 0
	case sqlparse.OpGe:
		return value.Compare(mx, v) < 0
	}
	return false
}

// colEnv adapts one row of decoded column chunks.
type colEnv struct {
	index map[string]int
	cols  map[int][]value.Value
	row   int
	nCols int
}

func (c *colEnv) Lookup(_, name string) (value.Value, bool) {
	i, ok := c.index[strings.ToLower(name)]
	if !ok {
		return value.Null(), false
	}
	col, ok := c.cols[i]
	if !ok {
		return value.Null(), false // not loaded -> not referenced
	}
	return col[c.row], true
}

// executor runs the per-row pipeline: filter, then either accumulate
// aggregates/groups or project.
type executor struct {
	sel    *sqlparse.Select
	ev     *expr.Evaluator
	header []string

	aggMode   bool
	groupMode bool
	agg       *expr.AggRunner
	groups    map[string]*groupState
	groupKeys []string

	rows            [][]string
	returned        int64
	terminatedEarly bool
}

type groupState struct {
	keyVals []value.Value
	agg     *expr.AggRunner
}

func newExecutor(sel *sqlparse.Select, ev *expr.Evaluator, header []string) (*executor, error) {
	ex := &executor{sel: sel, ev: ev, header: header}
	if len(sel.GroupBy) > 0 {
		ex.groupMode = true
		ex.groups = map[string]*groupState{}
	} else if sel.HasAggregates() {
		ex.aggMode = true
		ex.agg = expr.NewAggRunner(ev, itemExprs(sel))
	}
	return ex, nil
}

func itemExprs(sel *sqlparse.Select) []sqlparse.Expr {
	out := make([]sqlparse.Expr, len(sel.Items))
	for i, it := range sel.Items {
		out[i] = it.Expr
	}
	return out
}

// row processes one input row; returns true when the scan can stop early.
func (ex *executor) row(env expr.Env) (bool, error) {
	if ex.sel.Where != nil {
		ok, err := ex.ev.EvalBool(ex.sel.Where, env)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	switch {
	case ex.groupMode:
		return false, ex.groupRow(env)
	case ex.aggMode:
		return false, ex.agg.Add(env)
	default:
		out, err := ex.project(env)
		if err != nil {
			return false, err
		}
		ex.rows = append(ex.rows, out)
		if ex.sel.Limit >= 0 && int64(len(ex.rows)) >= ex.sel.Limit {
			ex.terminatedEarly = true
			return true, nil
		}
		return false, nil
	}
}

func (ex *executor) groupRow(env expr.Env) error {
	var key strings.Builder
	keyVals := make([]value.Value, len(ex.sel.GroupBy))
	for i, g := range ex.sel.GroupBy {
		v, err := ex.ev.Eval(g, env)
		if err != nil {
			return err
		}
		keyVals[i] = v
		key.WriteString(v.String())
		key.WriteByte('\x00')
	}
	k := key.String()
	gs, ok := ex.groups[k]
	if !ok {
		gs = &groupState{keyVals: keyVals, agg: expr.NewAggRunner(ex.ev, itemExprs(ex.sel))}
		ex.groups[k] = gs
		ex.groupKeys = append(ex.groupKeys, k)
	}
	return gs.agg.Add(env)
}

func (ex *executor) project(env expr.Env) ([]string, error) {
	var out []string
	for _, it := range ex.sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			for i := range ex.header {
				v, _ := env.Lookup("", ex.header[i])
				out = append(out, v.String())
			}
			continue
		}
		v, err := ex.ev.Eval(it.Expr, env)
		if err != nil {
			return nil, err
		}
		out = append(out, v.String())
	}
	return out, nil
}

// groupEnv resolves group-by expressions to the group's key values during
// finalization (so SELECT c_nationkey, SUM(x) ... GROUP BY c_nationkey can
// output the key column).
type groupEnv struct {
	exprs []sqlparse.Expr
	vals  []value.Value
}

func (g *groupEnv) Lookup(q, name string) (value.Value, bool) {
	for i, e := range g.exprs {
		if c, ok := e.(*sqlparse.Column); ok && strings.EqualFold(c.Name, name) {
			return g.vals[i], true
		}
	}
	return value.Null(), false
}

func (ex *executor) finish(stats *Stats) (*Result, error) {
	res := &Result{Stats: *stats}
	for _, it := range ex.sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			res.Columns = append(res.Columns, ex.header...)
			continue
		}
		res.Columns = append(res.Columns, itemName(it))
	}
	switch {
	case ex.groupMode:
		for _, k := range ex.groupKeys {
			gs := ex.groups[k]
			genv := &groupEnv{exprs: ex.sel.GroupBy, vals: gs.keyVals}
			var row []string
			for _, it := range ex.sel.Items {
				v, err := gs.agg.Final(it.Expr, genv)
				if err != nil {
					return nil, err
				}
				row = append(row, v.String())
			}
			res.Rows = append(res.Rows, row)
		}
	case ex.aggMode:
		var row []string
		for _, it := range ex.sel.Items {
			v, err := ex.agg.Final(it.Expr, expr.MapEnv{})
			if err != nil {
				return nil, err
			}
			row = append(row, v.String())
		}
		res.Rows = append(res.Rows, row)
	default:
		res.Rows = ex.rows
	}
	var returned int64
	for _, r := range res.Rows {
		for _, f := range r {
			returned += int64(len(f)) + 1 // field + separator/newline
		}
	}
	res.Stats.RowsReturned = int64(len(res.Rows))
	res.Stats.BytesReturned = returned
	return res, nil
}

func itemName(it sqlparse.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*sqlparse.Column); ok {
		return c.Name
	}
	return it.Expr.String()
}
