package selectengine

import (
	"fmt"
	"testing"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/value"
)

// Micro-benchmarks of the storage-side scan paths (the simulator's own
// throughput; paper-scale numbers come from cloudsim).

func benchCSV(rows int) []byte {
	header := []string{"k", "g", "v", "s"}
	data := make([][]string, rows)
	for i := range data {
		data[i] = []string{
			fmt.Sprint(i), fmt.Sprint(i % 16),
			fmt.Sprintf("%.4f", float64(i)*0.5), "text-" + fmt.Sprint(i%100),
		}
	}
	return csvx.Encode(header, data)
}

func benchColumnar(rows int, b *testing.B) []byte {
	schema := colformat.Schema{
		{Name: "k", Kind: value.KindInt}, {Name: "g", Kind: value.KindInt},
		{Name: "v", Kind: value.KindFloat}, {Name: "s", Kind: value.KindString},
	}
	w := colformat.NewWriter(schema, 4096, true)
	for i := 0; i < rows; i++ {
		if err := w.Append([]value.Value{
			value.Int(int64(i)), value.Int(int64(i % 16)),
			value.Float(float64(i) * 0.5), value.Str("text-" + fmt.Sprint(i%100)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func BenchmarkCSVFilterScan(b *testing.B) {
	data := benchCSV(20000)
	req := Request{SQL: "SELECT k, v FROM S3Object WHERE v <= 100.0", HasHeader: true}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(data, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSVAggregate(b *testing.B) {
	data := benchCSV(20000)
	req := Request{SQL: "SELECT SUM(v), COUNT(*) FROM S3Object WHERE g = 3", HasHeader: true}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(data, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSVCaseGroupBy(b *testing.B) {
	// The Listing-4 shape: 16 groups x 1 aggregate.
	sql := "SELECT "
	for g := 0; g < 16; g++ {
		if g > 0 {
			sql += ", "
		}
		sql += fmt.Sprintf("SUM(CASE WHEN g = %d THEN v ELSE 0 END)", g)
	}
	sql += " FROM S3Object"
	data := benchCSV(20000)
	req := Request{SQL: sql, HasHeader: true}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(data, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColumnarFilterScan(b *testing.B) {
	data := benchColumnar(20000, b)
	req := Request{SQL: "SELECT k, v FROM S3Object WHERE v <= 100.0"}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(data, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBloomPredicateScan(b *testing.B) {
	// A 7-probe Bloom predicate, the Fig. 2-4 probe-side workload.
	bits := make([]byte, 1024)
	for i := range bits {
		bits[i] = '0' + byte(i%2)
	}
	sql := "SELECT k FROM S3Object WHERE "
	for h := 0; h < 7; h++ {
		if h > 0 {
			sql += " AND "
		}
		sql += fmt.Sprintf(
			"SUBSTRING('%s', ((%d * CAST(k AS INT) + %d) %% 1048583) %% 1024 + 1, 1) = '1'",
			string(bits), 131+h*7, 17+h)
	}
	data := benchCSV(5000)
	req := Request{SQL: sql, HasHeader: true}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(data, req); err != nil {
			b.Fatal(err)
		}
	}
}
