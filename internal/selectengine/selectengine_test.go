package selectengine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

var customerCSV = csvx.Encode(
	[]string{"c_custkey", "c_name", "c_acctbal", "c_nationkey"},
	[][]string{
		{"1", "Customer#1", "-980.5", "0"},
		{"2", "Customer#2", "150.5", "1"},
		{"3", "Customer#3", "-960.0", "0"},
		{"4", "Customer#4", "3000.25", "2"},
		{"5", "Customer#5", "-955.1", "1"},
	},
)

func run(t *testing.T, data []byte, sql string) *Result {
	t.Helper()
	res, err := Execute(data, Request{SQL: sql, HasHeader: true})
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func TestProjection(t *testing.T) {
	res := run(t, customerCSV, "SELECT c_custkey, c_acctbal FROM S3Object")
	if len(res.Rows) != 5 || len(res.Rows[0]) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "1" || res.Rows[0][1] != "-980.5" {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if !reflect.DeepEqual(res.Columns, []string{"c_custkey", "c_acctbal"}) {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	res := run(t, customerCSV, "SELECT * FROM S3Object")
	if len(res.Rows) != 5 || len(res.Rows[0]) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFilterNumericOnCSVStrings(t *testing.T) {
	// The paper's Fig. 2 predicate: numeric comparison over CSV text.
	res := run(t, customerCSV, "SELECT c_custkey FROM S3Object WHERE c_acctbal <= -950")
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0])
	}
	if !reflect.DeepEqual(got, []string{"1", "3", "5"}) {
		t.Errorf("filtered keys = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	res := run(t, customerCSV, "SELECT COUNT(*), SUM(c_acctbal), MIN(c_acctbal), MAX(c_acctbal), AVG(c_nationkey) FROM S3Object")
	if len(res.Rows) != 1 {
		t.Fatalf("agg rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0] != "5" {
		t.Errorf("count = %q", row[0])
	}
	if row[2] != "-980.5" || row[3] != "3000.25" {
		t.Errorf("min/max = %q/%q", row[2], row[3])
	}
	if row[4] != "0.8" {
		t.Errorf("avg = %q", row[4])
	}
}

func TestAggregateWithCase(t *testing.T) {
	// The S3-side group-by phase 2 query shape (Listing 4).
	sql := `SELECT SUM(CASE WHEN c_nationkey = 0 THEN c_acctbal ELSE 0 END),
	               SUM(CASE WHEN c_nationkey = 1 THEN c_acctbal ELSE 0 END)
	        FROM S3Object`
	res := run(t, customerCSV, sql)
	row := res.Rows[0]
	if row[0] != "-1940.5" {
		t.Errorf("nation 0 sum = %q", row[0])
	}
	if row[1] != "-804.6" {
		t.Errorf("nation 1 sum = %q", row[1])
	}
}

func TestLimitEarlyTermination(t *testing.T) {
	res := run(t, customerCSV, "SELECT c_custkey FROM S3Object LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Stats.BytesScanned >= int64(len(customerCSV)) {
		t.Errorf("LIMIT should stop the scan early: scanned %d of %d",
			res.Stats.BytesScanned, len(customerCSV))
	}
	if res.Stats.RowsScanned != 2 {
		t.Errorf("rows scanned = %d", res.Stats.RowsScanned)
	}
}

func TestScanRange(t *testing.T) {
	// Find the byte offset of the third data row and scan from there.
	ranges, err := csvx.RowRanges(customerCSV, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(customerCSV, Request{
		SQL:       "SELECT c_custkey FROM S3Object",
		HasHeader: true,
		ScanRange: &ScanRange{Start: ranges[2][0], End: int64(len(customerCSV))},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0])
	}
	if !reflect.DeepEqual(got, []string{"3", "4", "5"}) {
		t.Errorf("range scan keys = %v", got)
	}
	if res.Stats.BytesScanned >= int64(len(customerCSV)) {
		t.Error("range scan should not scan the whole object")
	}
}

func TestBloomStringPredicate(t *testing.T) {
	// The paper's Listing 1: probe a '0'/'1' string with SUBSTRING.
	// Bit array "01010" (positions 1..5); hash = ((1*x + 0) % 7) % 5 + 1.
	// custkey 1 -> pos 2 = '1' pass; custkey 2 -> pos 3 = '0' fail;
	// custkey 3 -> pos 4 = '1' pass.
	sql := "SELECT c_custkey FROM S3Object WHERE SUBSTRING('01010', ((1 * CAST(c_custkey AS INT) + 0) % 7) % 5 + 1, 1) = '1'"
	res := run(t, customerCSV, sql)
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0])
	}
	if !reflect.DeepEqual(got, []string{"1", "3"}) {
		t.Errorf("bloom-filtered keys = %v", got)
	}
}

func TestRestrictions(t *testing.T) {
	cases := []string{
		"SELECT c_custkey FROM S3Object ORDER BY c_custkey",
		"SELECT c_nationkey, SUM(c_acctbal) FROM S3Object GROUP BY c_nationkey",
		"SELECT c_custkey, SUM(c_acctbal) FROM S3Object",
		"SELECT *, COUNT(*) FROM S3Object",
	}
	for _, sql := range cases {
		if _, err := Execute(customerCSV, Request{SQL: sql, HasHeader: true}); err == nil {
			t.Errorf("%q should be rejected", sql)
		}
	}
}

func TestExpressionSizeLimit(t *testing.T) {
	big := "SELECT c_custkey FROM S3Object WHERE SUBSTRING('" +
		strings.Repeat("1", MaxSQLBytes) + "', 1, 1) = '1'"
	if _, err := Execute(customerCSV, Request{SQL: big, HasHeader: true}); err == nil {
		t.Error("oversized SQL should be rejected")
	}
}

func TestGroupByExtension(t *testing.T) {
	sql := "SELECT c_nationkey, SUM(c_acctbal) FROM S3Object GROUP BY c_nationkey"
	res, err := Execute(customerCSV, Request{
		SQL: sql, HasHeader: true,
		Capabilities: Capabilities{AllowGroupBy: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sums := map[string]string{}
	for _, r := range res.Rows {
		sums[r[0]] = r[1]
	}
	if sums["0"] != "-1940.5" || sums["1"] != "-804.6" || sums["2"] != "3000.25" {
		t.Errorf("group sums = %v", sums)
	}
}

func TestBloomContainsExtension(t *testing.T) {
	// m=8 bits, bits {1,3} set -> 0x0A; hash ((1*x+0)%11)%8.
	sql := "SELECT c_custkey FROM S3Object WHERE BLOOM_CONTAINS('0a', 8, 11, 1, 0, CAST(c_custkey AS INT))"
	if _, err := Execute(customerCSV, Request{SQL: sql, HasHeader: true}); err == nil {
		t.Error("BLOOM_CONTAINS must require the capability flag")
	}
	res, err := Execute(customerCSV, Request{
		SQL: sql, HasHeader: true,
		Capabilities: Capabilities{AllowBloomContains: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0])
	}
	if !reflect.DeepEqual(got, []string{"1", "3"}) {
		t.Errorf("bloom keys = %v", got)
	}
}

func TestPositionalColumns(t *testing.T) {
	res := run(t, customerCSV, "SELECT _1, _3 FROM S3Object WHERE _4 = 2")
	if len(res.Rows) != 1 || res.Rows[0][0] != "4" {
		t.Errorf("positional rows = %v", res.Rows)
	}
}

func TestStatsAccounting(t *testing.T) {
	res := run(t, customerCSV, "SELECT c_custkey FROM S3Object WHERE c_acctbal <= -950")
	if res.Stats.BytesScanned != int64(len(customerCSV)) {
		t.Errorf("full scan should scan the whole object: %d", res.Stats.BytesScanned)
	}
	if res.Stats.RowsScanned != 5 || res.Stats.RowsReturned != 3 {
		t.Errorf("rows scanned/returned = %d/%d", res.Stats.RowsScanned, res.Stats.RowsReturned)
	}
	if res.Stats.BytesReturned <= 0 || res.Stats.BytesReturned >= res.Stats.BytesScanned {
		t.Errorf("bytes returned = %d", res.Stats.BytesReturned)
	}
	if res.Stats.ExprNodes <= 0 {
		t.Error("expression node count missing")
	}
}

func TestEmptyObject(t *testing.T) {
	res, err := Execute(nil, Request{SQL: "SELECT * FROM S3Object", HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestNullFieldsAreEmptyStrings(t *testing.T) {
	data := csvx.Encode([]string{"a", "b"}, [][]string{{"", "1"}, {"2", ""}})
	res := run(t, data, "SELECT a FROM S3Object WHERE a IS NOT NULL")
	if len(res.Rows) != 1 || res.Rows[0][0] != "2" {
		t.Errorf("rows = %v", res.Rows)
	}
}

// --- Columnar ---

func columnarCustomer(t *testing.T) []byte {
	t.Helper()
	schema := colformat.Schema{
		{Name: "c_custkey", Kind: value.KindInt},
		{Name: "c_name", Kind: value.KindString},
		{Name: "c_acctbal", Kind: value.KindFloat},
		{Name: "c_nationkey", Kind: value.KindInt},
	}
	rows := [][]value.Value{
		{value.Int(1), value.Str("Customer#1"), value.Float(-980.5), value.Int(0)},
		{value.Int(2), value.Str("Customer#2"), value.Float(150.5), value.Int(1)},
		{value.Int(3), value.Str("Customer#3"), value.Float(-960.0), value.Int(0)},
		{value.Int(4), value.Str("Customer#4"), value.Float(3000.25), value.Int(2)},
		{value.Int(5), value.Str("Customer#5"), value.Float(-955.1), value.Int(1)},
	}
	data, err := colformat.Encode(schema, rows, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestColumnarFilterMatchesCSV(t *testing.T) {
	sqls := []string{
		"SELECT c_custkey FROM S3Object WHERE c_acctbal <= -950",
		"SELECT COUNT(*), SUM(c_acctbal) FROM S3Object",
		"SELECT * FROM S3Object WHERE c_nationkey = 1",
	}
	colData := columnarCustomer(t)
	for _, sql := range sqls {
		a := run(t, customerCSV, sql)
		b := run(t, colData, sql)
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Errorf("%q: CSV %v != columnar %v", sql, a.Rows, b.Rows)
		}
	}
}

func TestColumnarPruning(t *testing.T) {
	colData := columnarCustomer(t)
	one := run(t, colData, "SELECT c_custkey FROM S3Object")
	all := run(t, colData, "SELECT * FROM S3Object")
	if one.Stats.BytesScanned >= all.Stats.BytesScanned {
		t.Errorf("column pruning should scan fewer bytes: %d vs %d",
			one.Stats.BytesScanned, all.Stats.BytesScanned)
	}
}

func TestColumnarRowGroupSkip(t *testing.T) {
	// Row groups of 2: keys (1,2),(3,4),(5). Predicate c_custkey > 4 can
	// skip the first two groups via min/max stats.
	colData := columnarCustomer(t)
	res := run(t, colData, "SELECT c_custkey FROM S3Object WHERE c_custkey > 4")
	if len(res.Rows) != 1 || res.Rows[0][0] != "5" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Stats.RowsScanned != 1 {
		t.Errorf("row-group skipping failed: scanned %d rows", res.Stats.RowsScanned)
	}
}

func TestColumnarRejectsScanRange(t *testing.T) {
	_, err := Execute(columnarCustomer(t), Request{
		SQL:       "SELECT * FROM S3Object",
		ScanRange: &ScanRange{0, 10},
	})
	if err == nil {
		t.Error("ScanRange over columnar should be rejected")
	}
}

func TestCountNodes(t *testing.T) {
	sel, _ := sqlparse.Parse("SELECT a FROM t WHERE b = 1 AND c < 2")
	n := CountNodes(sel)
	if n < 7 {
		t.Errorf("CountNodes = %d, want >= 7", n)
	}
	sel2, _ := sqlparse.Parse("SELECT a FROM t")
	if CountNodes(sel2) >= n {
		t.Error("simpler query should have fewer nodes")
	}
}

// Property: S3-side filter returns exactly the rows a local filter keeps.
func TestQuickFilterEquivalence(t *testing.T) {
	f := func(vals []int16, threshold int16) bool {
		if len(vals) == 0 {
			return true
		}
		rows := make([][]string, len(vals))
		for i, v := range vals {
			rows[i] = []string{fmt.Sprint(v)}
		}
		data := csvx.Encode([]string{"x"}, rows)
		res, err := Execute(data, Request{
			SQL:       fmt.Sprintf("SELECT x FROM S3Object WHERE x <= %d", threshold),
			HasHeader: true,
		})
		if err != nil {
			return false
		}
		var want []string
		for _, v := range vals {
			if v <= threshold {
				want = append(want, fmt.Sprint(v))
			}
		}
		if len(res.Rows) != len(want) {
			return false
		}
		for i := range want {
			if res.Rows[i][0] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: SUM pushdown equals local summation.
func TestQuickSumEquivalence(t *testing.T) {
	f := func(vals []int16) bool {
		rows := make([][]string, len(vals))
		var want int64
		for i, v := range vals {
			rows[i] = []string{fmt.Sprint(v)}
			want += int64(v)
		}
		data := csvx.Encode([]string{"x"}, rows)
		res, err := Execute(data, Request{SQL: "SELECT SUM(x) FROM S3Object", HasHeader: true})
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return res.Rows[0][0] == "" // SUM over empty is NULL
		}
		return res.Rows[0][0] == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
