package selectengine

import (
	"reflect"
	"testing"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/value"
)

func TestExtractPushdown(t *testing.T) {
	data := csvx.Encode([]string{"d", "v"}, [][]string{
		{"1994-03-15", "10"}, {"1995-07-01", "20"}, {"1994-12-31", "30"},
	})
	res := run(t, data, "SELECT v FROM S3Object WHERE EXTRACT(YEAR FROM d) = 1994")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = run(t, data, "SELECT SUM(CASE WHEN EXTRACT(MONTH FROM d) = 3 THEN v ELSE 0 END) FROM S3Object")
	if res.Rows[0][0] != "10" {
		t.Errorf("march sum = %q", res.Rows[0][0])
	}
}

func TestCoalesceNullifPushdown(t *testing.T) {
	data := csvx.Encode([]string{"a", "b"}, [][]string{
		{"", "5"}, {"3", "7"}, {"", ""},
	})
	res := run(t, data, "SELECT COALESCE(a, b, 0) FROM S3Object")
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0])
	}
	if !reflect.DeepEqual(got, []string{"5", "3", "0"}) {
		t.Errorf("coalesce column = %v", got)
	}
	res = run(t, data, "SELECT a FROM S3Object WHERE NULLIF(b, 5) IS NOT NULL")
	if len(res.Rows) != 1 || res.Rows[0][0] != "3" {
		t.Errorf("nullif filter = %v", res.Rows)
	}
}

func TestAggregateIgnoresLimitlessScan(t *testing.T) {
	// Aggregates scan the whole object even when LIMIT is present (LIMIT
	// applies to output rows, and aggregation yields one).
	res := run(t, customerCSV, "SELECT COUNT(*) FROM S3Object LIMIT 1")
	if res.Rows[0][0] != "5" {
		t.Errorf("count = %q", res.Rows[0][0])
	}
	if res.Stats.BytesScanned != int64(len(customerCSV)) {
		t.Errorf("aggregate under LIMIT should scan fully: %d", res.Stats.BytesScanned)
	}
}

func TestScanRangeMidRowStart(t *testing.T) {
	// A range starting in the middle of a row must skip to the next full
	// row (rows are attributed to their starting offset).
	ranges, _ := csvx.RowRanges(customerCSV, true)
	start := ranges[1][0] + 2 // inside row 2
	res, err := Execute(customerCSV, Request{
		SQL:       "SELECT c_custkey FROM S3Object",
		HasHeader: true,
		ScanRange: &ScanRange{Start: start, End: int64(len(customerCSV))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0] != "3" {
		t.Errorf("rows = %v (range should start at the next row boundary)", res.Rows)
	}
}

func TestScanRangeEmptyWindow(t *testing.T) {
	res, err := Execute(customerCSV, Request{
		SQL:       "SELECT * FROM S3Object",
		HasHeader: true,
		ScanRange: &ScanRange{Start: int64(len(customerCSV)) - 1, End: int64(len(customerCSV))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Stats.BytesScanned != 0 {
		t.Errorf("empty window scanned %d bytes", res.Stats.BytesScanned)
	}
}

func TestQuotedCSVDataThroughSelect(t *testing.T) {
	data := csvx.Encode([]string{"name", "note"}, [][]string{
		{"a,b", "said \"hi\""},
		{"plain", "multi\nline"},
	})
	res := run(t, data, "SELECT name, note FROM S3Object WHERE name = 'a,b'")
	if len(res.Rows) != 1 || res.Rows[0][1] != `said "hi"` {
		t.Errorf("rows = %q", res.Rows)
	}
}

func TestCellAccounting(t *testing.T) {
	res := run(t, customerCSV, "SELECT c_custkey FROM S3Object")
	// CSV decodes every cell of every row: 5 rows x 4 columns.
	if res.Stats.CellsDecoded != 20 {
		t.Errorf("CSV cells = %d, want 20", res.Stats.CellsDecoded)
	}
	colData := columnarCustomer(t)
	res2 := run(t, colData, "SELECT c_custkey FROM S3Object")
	// Columnar decodes only the referenced column: 5 rows x 1 column.
	if res2.Stats.CellsDecoded != 5 {
		t.Errorf("columnar cells = %d, want 5", res2.Stats.CellsDecoded)
	}
	if res2.Stats.DecompressBytes != 0 {
		t.Errorf("uncompressed chunks should report no inflate bytes, got %d",
			res2.Stats.DecompressBytes)
	}
}

func TestColumnarCompressedDecompressAccounting(t *testing.T) {
	schema := colformat.Schema{{Name: "s", Kind: value.KindString}}
	rows := make([][]value.Value, 500)
	for i := range rows {
		rows[i] = []value.Value{value.Str("repetitive-payload-compresses-well")}
	}
	data, err := colformat.Encode(schema, rows, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, data, "SELECT s FROM S3Object")
	if res.Stats.DecompressBytes <= res.Stats.BytesScanned {
		t.Errorf("inflate bytes %d should exceed compressed scan bytes %d",
			res.Stats.DecompressBytes, res.Stats.BytesScanned)
	}
}

func TestColumnarLimitStopsEarly(t *testing.T) {
	colData := columnarCustomer(t) // row groups of 2
	res := run(t, colData, "SELECT c_custkey FROM S3Object LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Stats.RowsScanned != 2 {
		t.Errorf("scanned %d rows, early termination broken", res.Stats.RowsScanned)
	}
}

func TestColumnarLike(t *testing.T) {
	colData := columnarCustomer(t)
	res := run(t, colData, "SELECT c_name FROM S3Object WHERE c_name LIKE '%#4'")
	if len(res.Rows) != 1 || res.Rows[0][0] != "Customer#4" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestColumnarNullsInPredicate(t *testing.T) {
	schema := colformat.Schema{
		{Name: "k", Kind: value.KindInt},
		{Name: "v", Kind: value.KindFloat},
	}
	rows := [][]value.Value{
		{value.Int(1), value.Float(10)},
		{value.Int(2), value.Null()},
		{value.Int(3), value.Float(30)},
	}
	data, err := colformat.Encode(schema, rows, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, data, "SELECT k FROM S3Object WHERE v > 5")
	if len(res.Rows) != 2 {
		t.Errorf("NULL must not satisfy the predicate: %v", res.Rows)
	}
	res = run(t, data, "SELECT k FROM S3Object WHERE v IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0] != "2" {
		t.Errorf("IS NULL rows = %v", res.Rows)
	}
	// Aggregates skip NULLs.
	res = run(t, data, "SELECT COUNT(v), AVG(v) FROM S3Object")
	if res.Rows[0][0] != "2" || res.Rows[0][1] != "20" {
		t.Errorf("agg over NULLs = %v", res.Rows[0])
	}
}

func TestConstantItemsWithAggregates(t *testing.T) {
	res := run(t, customerCSV, "SELECT 42, COUNT(*) FROM S3Object")
	if res.Rows[0][0] != "42" || res.Rows[0][1] != "5" {
		t.Errorf("row = %v", res.Rows[0])
	}
}
