package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Root() != nil {
		t.Fatalf("nil trace leaked state")
	}
	tr.Finish()
	var sp *Span
	c := sp.Child("x")
	if c != nil {
		t.Fatalf("nil span child = %v, want nil", c)
	}
	c.End()
	c.SetInt("rows", 1)
	c.SetFloat("sec", 1)
	c.SetStr("k", "v")
	c.AddInt("rows", 1)
	if tr.Snapshot() != nil {
		t.Fatalf("nil trace snapshot non-nil")
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatalf("empty context carried a trace")
	}
	if WithTrace(ctx, nil) != ctx {
		t.Fatalf("attaching nil should return ctx unchanged")
	}
	tr := New("q-1", "query")
	got := FromContext(WithTrace(ctx, tr))
	if got != tr {
		t.Fatalf("round trip lost the trace")
	}
}

func TestSpanTreeAndSnapshot(t *testing.T) {
	tr := New("q-2", "query")
	sel := tr.Root().Child("select")
	scan := sel.Child("scan part")
	scan.SetInt("rows", 42)
	scan.AddInt("bytes", 100)
	scan.AddInt("bytes", 28)
	scan.SetStr("cache", "miss")
	scan.SetFloat("sim_sec", 0.5)
	scan.End()
	dec := sel.Child("decode")
	dec.End()
	sel.End()
	tr.Finish()

	d := tr.Snapshot()
	if d.ID != "q-2" || d.Root.Name != "query" {
		t.Fatalf("root mismatch: %+v", d)
	}
	sp := d.Find("scan part")
	if sp == nil {
		t.Fatalf("scan span missing:\n%s", d.Tree())
	}
	if v, ok := sp.Int("rows"); !ok || v != 42 {
		t.Fatalf("rows = %d,%v", v, ok)
	}
	if v, ok := sp.Int("bytes"); !ok || v != 128 {
		t.Fatalf("bytes = %d,%v want 128", v, ok)
	}
	if s, ok := sp.Str("cache"); !ok || s != "miss" {
		t.Fatalf("cache = %q,%v", s, ok)
	}
	if f, ok := sp.Float("sim_sec"); !ok || f != 0.5 {
		t.Fatalf("sim_sec = %v,%v", f, ok)
	}
	if got := len(d.Find("select").Children); got != 2 {
		t.Fatalf("select children = %d, want 2", got)
	}
	if all := d.Root.FindAll("decode"); len(all) != 1 {
		t.Fatalf("FindAll decode = %d", len(all))
	}
	// Snapshot after the fact must be stable: mutate nothing, re-render.
	if !strings.Contains(d.Tree(), "cache=miss") {
		t.Fatalf("tree render lost attrs:\n%s", d.Tree())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	tr := New("q-3", "query")
	tr.Root().Child("scan").SetInt("rows", 7)
	tr.Finish()
	d := tr.Snapshot()

	var back TraceData
	if err := json.Unmarshal(d.JSON(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	sp := back.Find("scan")
	if sp == nil {
		t.Fatalf("scan missing after round trip")
	}
	if v, ok := sp.Int("rows"); !ok || v != 7 {
		t.Fatalf("rows after round trip = %d,%v", v, ok)
	}

	var events []map[string]any
	if err := json.Unmarshal(d.ChromeTrace(), &events); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("chrome events = %d, want 2", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" || ev["cat"] != "query" {
			t.Fatalf("bad event %v", ev)
		}
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("q-4", "query")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child(fmt.Sprintf("part-%d", i))
			sp.AddInt("rows", int64(i))
			root.AddInt("total", 1)
			sp.End()
		}(i)
	}
	wg.Wait()
	tr.Finish()
	d := tr.Snapshot()
	if got := len(d.Root.Children); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
	if v, _ := d.Root.Int("total"); v != 16 {
		t.Fatalf("total = %d, want 16", v)
	}
	d.Root.SortChildren()
	for i := 1; i < len(d.Root.Children); i++ {
		if d.Root.Children[i-1].Name > d.Root.Children[i].Name {
			t.Fatalf("SortChildren not sorted at %d", i)
		}
	}
}

func TestTraceLog(t *testing.T) {
	l := NewTraceLog(2)
	mk := func(id string) *TraceData {
		tr := New(id, "query")
		tr.Finish()
		return tr.Snapshot()
	}
	l.Add(mk("a"))
	l.Add(mk("b"))
	l.Add(mk("c")) // evicts a
	if l.Get("a") != nil {
		t.Fatalf("a should be evicted")
	}
	if l.Get("b") == nil || l.Get("c") == nil {
		t.Fatalf("b/c should be retained")
	}
	if ids := l.IDs(); len(ids) != 2 || ids[0] != "b" || ids[1] != "c" {
		t.Fatalf("IDs = %v", ids)
	}
	// Replacing an existing id must not evict.
	l.Add(mk("b"))
	if l.Get("c") == nil {
		t.Fatalf("replace evicted c")
	}
	l.Add(nil) // no-op
	var nilLog *TraceLog
	nilLog.Add(mk("x"))
	if nilLog.Get("x") != nil || nilLog.IDs() != nil {
		t.Fatalf("nil log leaked state")
	}
}

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	qc := r.Counter("pushdowndb_queries_total", "Queries executed.", "tenant", "status")
	qc.Inc("acme", "ok")
	qc.Inc("acme", "ok")
	qc.Add(1, "beta", "error")
	qc.Add(-5, "beta", "error")   // ignored: counters only go up
	qc.Add(1, "too", "many", "労") // ignored: label arity mismatch
	r.GaugeFunc("pushdowndb_in_flight", "In-flight queries.", func() float64 { return 3 })
	r.Gauge("pushdowndb_lane", "Lane depth.", []string{"tenant"}, func() []Sample {
		return []Sample{{Labels: []string{"z"}, Value: 1}, {Labels: []string{"a"}, Value: 2.5}}
	})
	h := r.Histogram("pushdowndb_wall_seconds", "Wall time.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100) // above top bucket: only +Inf

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# HELP pushdowndb_queries_total Queries executed.",
		"# TYPE pushdowndb_queries_total counter",
		`pushdowndb_queries_total{tenant="acme",status="ok"} 2`,
		`pushdowndb_queries_total{tenant="beta",status="error"} 1`,
		"# TYPE pushdowndb_in_flight gauge",
		"pushdowndb_in_flight 3",
		`pushdowndb_lane{tenant="a"} 2.5`,
		`pushdowndb_lane{tenant="z"} 1`,
		"# TYPE pushdowndb_wall_seconds histogram",
		`pushdowndb_wall_seconds_bucket{le="0.1"} 1`,
		`pushdowndb_wall_seconds_bucket{le="1"} 2`,
		`pushdowndb_wall_seconds_bucket{le="10"} 2`,
		`pushdowndb_wall_seconds_bucket{le="+Inf"} 3`,
		"pushdowndb_wall_seconds_sum 100.55",
		"pushdowndb_wall_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Sorted series: tenant "a" before "z".
	if strings.Index(out, `{tenant="a"}`) > strings.Index(out, `{tenant="z"}`) {
		t.Fatalf("gauge samples not sorted:\n%s", out)
	}
	if got := qc.Value("acme", "ok"); got != 2 {
		t.Fatalf("Value = %v, want 2", got)
	}

	// Two scrapes must be byte-identical (determinism).
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf2.String() != out {
		t.Fatalf("scrapes differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "X.", "q")
	c.Inc("a\"b\\c\nd")
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `x_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping: got\n%s\nwant line %q", buf.String(), want)
	}
}

func BenchmarkNilSpanOps(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := FromContext(ctx)
		sp := tr.Root().Child("scan")
		sp.AddInt("rows", 1)
		sp.End()
	}
}
