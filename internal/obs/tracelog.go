package obs

import "sync"

// TraceLog retains the last-N trace snapshots keyed by request id, the
// backing store for the daemon's /debug/trace/<id> endpoint. Adding an id
// already present replaces the old snapshot in place; otherwise the oldest
// entry is evicted once the ring is full.
type TraceLog struct {
	mu    sync.Mutex
	cap   int
	order []string
	byID  map[string]*TraceData
}

// NewTraceLog retains up to capacity traces (minimum 1).
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{cap: capacity, byID: map[string]*TraceData{}}
}

// Add retains d (no-op on nil or an empty id).
func (l *TraceLog) Add(d *TraceData) {
	if l == nil || d == nil || d.ID == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.byID[d.ID]; ok {
		l.byID[d.ID] = d
		return
	}
	if len(l.order) >= l.cap {
		evict := l.order[0]
		l.order = l.order[1:]
		delete(l.byID, evict)
	}
	l.order = append(l.order, d.ID)
	l.byID[d.ID] = d
}

// Get returns the retained trace for id, nil when absent or evicted.
func (l *TraceLog) Get(id string) *TraceData {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.byID[id]
}

// IDs returns the retained ids, oldest first.
func (l *TraceLog) IDs() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string{}, l.order...)
}
