package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a hand-rolled Prometheus-style metrics registry: counters
// and histograms accumulate in-process, gauges are collected at scrape
// time from their source of truth, and WritePrometheus renders everything
// in the Prometheus text exposition format. No dependency on any client
// library — the format is five line shapes.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	gauges   []*gauge
	hists    []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// labelSep joins label values into a series key; 0xff cannot appear in
// UTF-8 text, so distinct value tuples never collide.
const labelSep = "\xff"

// series is one labeled sample line of a counter.
type series struct {
	labelVals []string
	value     float64
}

// Counter is a monotonically increasing metric family with fixed label
// names; each distinct label-value tuple is its own series.
type Counter struct {
	name, help string
	labels     []string

	mu   sync.Mutex
	vals map[string]*series
}

// Counter registers (and returns) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{name: name, help: help, labels: labels, vals: map[string]*series{}}
	r.mu.Lock()
	r.counters = append(r.counters, c)
	r.mu.Unlock()
	return c
}

// Add increases the series selected by labelVals (one value per label
// name, in registration order) by v. Negative v is ignored — counters
// only go up.
func (c *Counter) Add(v float64, labelVals ...string) {
	if v < 0 || len(labelVals) != len(c.labels) {
		return
	}
	key := strings.Join(labelVals, labelSep)
	c.mu.Lock()
	s := c.vals[key]
	if s == nil {
		s = &series{labelVals: append([]string{}, labelVals...)}
		c.vals[key] = s
	}
	s.value += v
	c.mu.Unlock()
}

// Inc is Add(1).
func (c *Counter) Inc(labelVals ...string) { c.Add(1, labelVals...) }

// Value returns the current value of one series (0 when absent).
func (c *Counter) Value(labelVals ...string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.vals[strings.Join(labelVals, labelSep)]; s != nil {
		return s.value
	}
	return 0
}

// Sample is one gauge reading produced by a collect callback.
type Sample struct {
	Labels []string // one value per label name; empty for unlabeled gauges
	Value  float64
}

// gauge is a scrape-time-collected metric family.
type gauge struct {
	name, help string
	labels     []string
	collect    func() []Sample
}

// Gauge registers a gauge family collected at scrape time: collect
// returns the current samples straight from the source of truth (queue
// depths, cache occupancy), so the gauge can never drift from it.
func (r *Registry) Gauge(name, help string, labels []string, collect func() []Sample) {
	r.mu.Lock()
	r.gauges = append(r.gauges, &gauge{name: name, help: help, labels: labels, collect: collect})
	r.mu.Unlock()
}

// GaugeFunc registers an unlabeled single-sample gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.Gauge(name, help, nil, func() []Sample { return []Sample{{Value: fn()}} })
}

// histSeries is one labeled histogram: cumulative bucket counts plus
// sum/count, the Prometheus histogram layout.
type histSeries struct {
	labelVals []string
	counts    []uint64 // per bucket, non-cumulative; rendered cumulative
	sum       float64
	count     uint64
}

// Histogram is a histogram family with fixed, sorted upper bounds.
type Histogram struct {
	name, help string
	labels     []string
	buckets    []float64

	mu   sync.Mutex
	vals map[string]*histSeries
}

// DefBuckets covers query latencies from 1 ms to ~4 minutes.
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 250}

// Histogram registers a histogram family. A nil buckets uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	sorted := append([]float64{}, buckets...)
	sort.Float64s(sorted)
	h := &Histogram{name: name, help: help, labels: labels, buckets: sorted, vals: map[string]*histSeries{}}
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return h
}

// Observe records one value into the series selected by labelVals.
func (h *Histogram) Observe(v float64, labelVals ...string) {
	if len(labelVals) != len(h.labels) {
		return
	}
	key := strings.Join(labelVals, labelSep)
	h.mu.Lock()
	s := h.vals[key]
	if s == nil {
		s = &histSeries{labelVals: append([]string{}, labelVals...), counts: make([]uint64, len(h.buckets))}
		h.vals[key] = s
	}
	for i, ub := range h.buckets {
		if v <= ub {
			s.counts[i]++
			break
		}
	}
	s.sum += v
	s.count++
	h.mu.Unlock()
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, families and series in deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	counters := append([]*Counter{}, r.counters...)
	gauges := append([]*gauge{}, r.gauges...)
	hists := append([]*Histogram{}, r.hists...)
	r.mu.Unlock()

	for _, c := range counters {
		header(w, c.name, c.help, "counter")
		c.mu.Lock()
		for _, s := range sortedSeries(c.vals) {
			fmt.Fprintf(w, "%s%s %s\n", c.name, labelString(c.labels, s.labelVals), fmtVal(s.value))
		}
		c.mu.Unlock()
	}
	for _, g := range gauges {
		header(w, g.name, g.help, "gauge")
		samples := g.collect()
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].Labels, labelSep) < strings.Join(samples[j].Labels, labelSep)
		})
		for _, s := range samples {
			fmt.Fprintf(w, "%s%s %s\n", g.name, labelString(g.labels, s.Labels), fmtVal(s.Value))
		}
	}
	for _, h := range hists {
		header(w, h.name, h.help, "histogram")
		h.mu.Lock()
		for _, s := range sortedHistSeries(h.vals) {
			var cum uint64
			for i, ub := range h.buckets {
				cum += s.counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", h.name,
					labelString(append(h.labels, "le"), append(s.labelVals, fmtVal(ub))), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.name,
				labelString(append(h.labels, "le"), append(s.labelVals, "+Inf")), s.count)
			fmt.Fprintf(w, "%s_sum%s %s\n", h.name, labelString(h.labels, s.labelVals), fmtVal(s.sum))
			fmt.Fprintf(w, "%s_count%s %d\n", h.name, labelString(h.labels, s.labelVals), s.count)
		}
		h.mu.Unlock()
	}
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func sortedSeries(m map[string]*series) []*series {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

func sortedHistSeries(m map[string]*histSeries) []*histSeries {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*histSeries, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// labelString renders {a="x",b="y"}; "" with no labels.
func labelString(names, vals []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes per the exposition format: backslash, quote, newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// fmtVal renders a sample value the way Prometheus expects: integral
// values without an exponent, everything else in shortest 'g' form.
func fmtVal(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
