package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanData is the immutable snapshot of one span: offsets are microseconds
// relative to the trace's root start, so snapshots serialize compactly and
// render directly as Chrome tracing events.
type SpanData struct {
	ID      int            `json:"id"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	// attrOrder preserves insertion order for the text renderer (JSON maps
	// marshal key-sorted either way).
	attrOrder []string
	Children  []*SpanData `json:"children,omitempty"`
}

// TraceData is the immutable snapshot of a whole trace, safe to retain
// after the traced query's goroutines are gone.
type TraceData struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	Root  *SpanData `json:"root"`
}

// Snapshot copies the trace into an immutable TraceData. Spans not yet
// ended are measured to the snapshot instant.
func (t *Trace) Snapshot() *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	origin := t.root.start
	return &TraceData{ID: t.id, Start: origin, Root: snapshotSpan(t.root, origin, now)}
}

func snapshotSpan(s *Span, origin, now time.Time) *SpanData {
	end := s.end
	if end.IsZero() {
		end = now
	}
	d := &SpanData{
		ID:      s.id,
		Name:    s.name,
		StartUS: s.start.Sub(origin).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.Key] = a.Val
			d.attrOrder = append(d.attrOrder, a.Key)
		}
	}
	for _, c := range s.children {
		d.Children = append(d.Children, snapshotSpan(c, origin, now))
	}
	return d
}

// JSON renders the snapshot as indented JSON (the /debug/trace default).
func (d *TraceData) JSON() []byte {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}

// chromeEvent is one complete ("ph":"X") event of the Chrome tracing JSON
// array format (chrome://tracing and Perfetto both load it). Each span
// gets its own tid lane so concurrent partition spans render side by side.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders the snapshot in the Chrome tracing event-array
// format: save it as a .json file and load it in chrome://tracing.
func (d *TraceData) ChromeTrace() []byte {
	var events []chromeEvent
	var walk func(sp *SpanData)
	walk = func(sp *SpanData) {
		events = append(events, chromeEvent{
			Name: sp.Name, Cat: "query", Ph: "X",
			TS: sp.StartUS, Dur: sp.DurUS,
			PID: 1, TID: sp.ID, Args: sp.Attrs,
		})
		for _, c := range sp.Children {
			walk(c)
		}
	}
	if d.Root != nil {
		walk(d.Root)
	}
	b, err := json.Marshal(events)
	if err != nil {
		return []byte("[]")
	}
	return append(b, '\n')
}

// Tree renders the snapshot as an indented text tree, one span per line
// with its wall duration and attributes, in creation order.
func (d *TraceData) Tree() string {
	var b strings.Builder
	var walk func(sp *SpanData, depth int)
	walk = func(sp *SpanData, depth int) {
		fmt.Fprintf(&b, "%s%s %s", strings.Repeat("  ", depth), sp.Name, fmtDur(sp.DurUS))
		for _, k := range sp.attrOrder {
			fmt.Fprintf(&b, " %s=%v", k, sp.Attrs[k])
		}
		b.WriteByte('\n')
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	if d.Root != nil {
		walk(d.Root, 0)
	}
	return b.String()
}

func fmtDur(us int64) string {
	return fmt.Sprintf("%.3fms", float64(us)/1000)
}

// Find returns the first span (depth-first, creation order) whose name
// matches, nil when absent. Test helper-grade convenience.
func (d *TraceData) Find(name string) *SpanData {
	if d == nil || d.Root == nil {
		return nil
	}
	return d.Root.Find(name)
}

// Find returns sp itself or its first descendant named name.
func (sp *SpanData) Find(name string) *SpanData {
	if sp.Name == name {
		return sp
	}
	for _, c := range sp.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// FindAll returns every descendant (including sp) named name, depth-first.
func (sp *SpanData) FindAll(name string) []*SpanData {
	var out []*SpanData
	if sp.Name == name {
		out = append(out, sp)
	}
	for _, c := range sp.Children {
		out = append(out, c.FindAll(name)...)
	}
	return out
}

// Walk visits every span depth-first in creation order.
func (d *TraceData) Walk(fn func(sp *SpanData, depth int)) {
	if d == nil || d.Root == nil {
		return
	}
	var walk func(sp *SpanData, depth int)
	walk = func(sp *SpanData, depth int) {
		fn(sp, depth)
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	walk(d.Root, 0)
}

// Int returns the span's integer attribute (0, false when absent).
func (sp *SpanData) Int(key string) (int64, bool) {
	v, ok := sp.Attrs[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case int64:
		return n, true
	case float64: // a JSON round trip turns numbers into float64
		return int64(n), true
	}
	return 0, false
}

// Float returns the span's float attribute (0, false when absent).
func (sp *SpanData) Float(key string) (float64, bool) {
	v, ok := sp.Attrs[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return n, true
	case int64:
		return float64(n), true
	}
	return 0, false
}

// Str returns the span's string attribute ("", false when absent).
func (sp *SpanData) Str(key string) (string, bool) {
	s, ok := sp.Attrs[key].(string)
	return s, ok
}

// SortChildren orders children (recursively) by name then id — a
// deterministic view for golden renders over concurrent fan-outs.
func (sp *SpanData) SortChildren() {
	sort.SliceStable(sp.Children, func(i, j int) bool {
		if sp.Children[i].Name != sp.Children[j].Name {
			return sp.Children[i].Name < sp.Children[j].Name
		}
		return sp.Children[i].ID < sp.Children[j].ID
	})
	for _, c := range sp.Children {
		c.SortChildren()
	}
}
