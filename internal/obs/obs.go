// Package obs is PushdownDB's zero-dependency observability layer: query
// traces (hierarchical spans carrying wall-clock, row/byte counts and the
// matching cloudsim phase cost) and a hand-rolled Prometheus-style metrics
// registry. The engine starts spans at its existing phase boundaries via a
// context-carried *Trace; when no trace is attached every span operation
// is a nil-receiver no-op, so the off-state costs one pointer check per
// call site and allocates nothing.
//
// Concurrency: one mutex per Trace guards the whole span tree, so spans
// may be started, annotated and ended from concurrent partition fan-outs.
// Snapshot returns an immutable copy safe to retain, serve and render
// after the query's goroutines are gone.
package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is one query's span tree. Create with New, attach to a context
// with WithTrace, recover with FromContext (nil when absent — all methods
// on a nil *Trace and nil *Span are no-ops).
type Trace struct {
	id string

	mu   sync.Mutex
	seq  int
	root *Span
}

// New starts a trace whose root span is named rootName and begins now.
func New(id, rootName string) *Trace {
	t := &Trace{id: id}
	t.root = &Span{tr: t, id: t.nextIDLocked(), name: rootName, start: time.Now()}
	return t
}

// ID returns the trace's identifier (the server uses the request id).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span; nil on a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span (idempotent: an already-ended root keeps its
// end time).
func (t *Trace) Finish() { t.Root().End() }

// nextIDLocked allocates the next span id. New calls it before the trace
// escapes; all other callers hold t.mu.
func (t *Trace) nextIDLocked() int {
	t.seq++
	return t.seq
}

// Span is one timed node of the trace: a name, wall-clock bounds, ordered
// attributes (row/byte counts, cache and share outcomes, phase cost) and
// children. All methods are nil-receiver safe.
type Span struct {
	tr       *Trace
	id       int
	parent   int
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one span attribute. Val is an int64, float64 or string.
type Attr struct {
	Key string
	Val any
}

// Child starts a sub-span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Span{tr: t, id: t.nextIDLocked(), parent: s.id, name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// End stamps the span's end time. Idempotent; unended spans snapshot as
// still running (their duration is measured to the snapshot instant).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// setAttr sets (replacing) the attribute under t.mu.
func (s *Span) setAttr(key string, val any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// SetInt sets an integer attribute (rows, bytes, partition counts).
func (s *Span) SetInt(key string, v int64) { s.setAttr(key, v) }

// SetFloat sets a float attribute (phase seconds, dollar cost).
func (s *Span) SetFloat(key string, v float64) { s.setAttr(key, v) }

// SetStr sets a string attribute (cache/share outcome, strategy, sql).
func (s *Span) SetStr(key, v string) { s.setAttr(key, v) }

// AddInt accumulates onto an integer attribute, creating it at v. Safe
// under concurrent partition fan-outs (trace-mutex serialized).
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			if cur, ok := s.attrs[i].Val.(int64); ok {
				s.attrs[i].Val = cur + v
				return
			}
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// ctxKey carries a *Trace through a context.
type ctxKey struct{}

// WithTrace attaches a trace to the context; the engine's Exec picks it
// up in NewExecContext. Attaching nil returns ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext recovers the attached trace, nil when none is attached —
// the nil then propagates through every span helper as a no-op.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
