// Package store implements the object-store substrate standing in for
// Amazon S3: buckets of immutable byte objects addressed by key, with
// whole-object GET, single-range GET (what the real S3 API offers) and a
// multi-range GET extension (the paper's Suggestion 1).
//
// Tables are stored as one or more partition objects under a common prefix,
// e.g. customer/part0000.csv — the layout PushdownDB uses to load
// partitions in parallel. The store is safe for concurrent use.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Sentinel error classes. Store errors wrap one of these so callers (the
// s3api backends) can map them to structured error kinds without parsing
// messages.
var (
	// ErrNotFound marks a missing bucket or key.
	ErrNotFound = errors.New("not found")
	// ErrInvalidRange marks an unsatisfiable byte range (HTTP 416).
	ErrInvalidRange = errors.New("range not satisfiable")
)

// Store is an in-memory object store.
type Store struct {
	mu      sync.RWMutex
	buckets map[string]map[string][]byte
}

// New returns an empty store.
func New() *Store {
	return &Store{buckets: map[string]map[string][]byte{}}
}

// CreateBucket creates a bucket; creating an existing bucket is an error.
func (s *Store) CreateBucket(bucket string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[bucket]; ok {
		return fmt.Errorf("store: bucket %q already exists", bucket)
	}
	s.buckets[bucket] = map[string][]byte{}
	return nil
}

// Put stores an object, creating the bucket implicitly if needed. The data
// slice is retained; callers must not mutate it afterwards.
func (s *Store) Put(bucket, key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		b = map[string][]byte{}
		s.buckets[bucket] = b
	}
	b[key] = data
}

// Delete removes an object if present.
func (s *Store) Delete(bucket, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.buckets[bucket]; ok {
		delete(b, key)
	}
}

// Get returns the full object payload.
func (s *Store) Get(bucket, key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := s.lookup(bucket, key)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Size returns the object length in bytes.
func (s *Store) Size(bucket, key string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := s.lookup(bucket, key)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// GetRange returns bytes [first, last] inclusive, mirroring the HTTP Range
// header semantics S3 implements. last is clamped to the object end; a
// first past the end is an error (HTTP 416).
func (s *Store) GetRange(bucket, key string, first, last int64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := s.lookup(bucket, key)
	if err != nil {
		return nil, err
	}
	if first < 0 || first >= int64(len(data)) || last < first {
		return nil, fmt.Errorf("store: range [%d,%d] for %s/%s (len %d): %w",
			first, last, bucket, key, len(data), ErrInvalidRange)
	}
	if last >= int64(len(data)) {
		last = int64(len(data)) - 1
	}
	return data[first : last+1], nil
}

// GetRanges returns multiple inclusive ranges in one request — the
// multi-range GET of the paper's Suggestion 1. Results are in request
// order. Any unsatisfiable range fails the whole request.
func (s *Store) GetRanges(bucket, key string, ranges [][2]int64) ([][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := s.lookup(bucket, key)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(ranges))
	for i, r := range ranges {
		first, last := r[0], r[1]
		if first < 0 || first >= int64(len(data)) || last < first {
			return nil, fmt.Errorf("store: range [%d,%d] for %s/%s: %w",
				first, last, bucket, key, ErrInvalidRange)
		}
		if last >= int64(len(data)) {
			last = int64(len(data)) - 1
		}
		out[i] = data[first : last+1]
	}
	return out, nil
}

// List returns the keys in bucket with the given prefix, sorted.
func (s *Store) List(bucket, prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.buckets[bucket]
	var keys []string
	for k := range b {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Buckets returns all bucket names, sorted.
func (s *Store) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var names []string
	for b := range s.buckets {
		names = append(names, b)
	}
	sort.Strings(names)
	return names
}

func (s *Store) lookup(bucket, key string) ([]byte, error) {
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, fmt.Errorf("store: no such bucket %q: %w", bucket, ErrNotFound)
	}
	data, ok := b[key]
	if !ok {
		return nil, fmt.Errorf("store: no such key %q in bucket %q: %w", key, bucket, ErrNotFound)
	}
	return data, nil
}

// PartitionKey formats the canonical key of partition i of a table.
func PartitionKey(table string, i int) string {
	return fmt.Sprintf("%s/part%04d.csv", table, i)
}

// TableParts lists the partition keys of a table stored under the
// PartitionKey convention.
func (s *Store) TableParts(bucket, table string) []string {
	return s.List(bucket, table+"/part")
}

// TableSize sums the byte sizes of all partitions of a table.
func (s *Store) TableSize(bucket, table string) int64 {
	var total int64
	for _, k := range s.TableParts(bucket, table) {
		n, err := s.Size(bucket, k)
		if err == nil {
			total += n
		}
	}
	return total
}
