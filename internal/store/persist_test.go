package store

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := New()
	s.Put("tpch", "customer/part0000.csv", []byte("c1,c2\n1,2\n"))
	s.Put("tpch", "customer/part0001.csv", []byte("c1,c2\n3,4\n"))
	s.Put("tpch", "nation/part0000.csv", []byte("n\nALGERIA\n"))
	s.Put("other", "k", []byte{0x00, 0xFF, 0x7F}) // binary payload

	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	for _, bucket := range s.Buckets() {
		for _, key := range s.List(bucket, "") {
			want, _ := s.Get(bucket, key)
			got, err := loaded.Get(bucket, key)
			if err != nil {
				t.Fatalf("%s/%s missing after reload: %v", bucket, key, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s/%s payload differs after reload", bucket, key)
			}
		}
	}
	if got := loaded.TableParts("tpch", "customer"); len(got) != 2 {
		t.Errorf("partition listing after reload = %v", got)
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir("/nonexistent/path/for/sure"); err == nil {
		t.Error("missing directory should error")
	}
}

func TestSaveDirOverwrites(t *testing.T) {
	dir := t.TempDir()
	s := New()
	s.Put("b", "k", []byte("v1"))
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	s.Put("b", "k", []byte("v2-longer"))
	if err := s.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := loaded.Get("b", "k")
	if string(got) != "v2-longer" {
		t.Errorf("got %q after overwrite", got)
	}
}
