package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Disk persistence: SaveDir/LoadDir mirror the store to a directory tree
// (<dir>/<bucket>/<key>), so cmd/s3server can survive restarts and
// datasets generated once can be reused. Object keys may contain slashes;
// they map to subdirectories.

// SaveDir writes every bucket and object under dir, replacing existing
// files. Buckets become top-level directories.
func (s *Store) SaveDir(dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for bucket, objects := range s.buckets {
		for key, data := range objects {
			path := filepath.Join(dir, bucket, filepath.FromSlash(key))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return fmt.Errorf("store: save %s/%s: %w", bucket, key, err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return fmt.Errorf("store: save %s/%s: %w", bucket, key, err)
			}
		}
	}
	return nil
}

// LoadDir reads a directory tree written by SaveDir into a new store:
// every first-level directory is a bucket, every file below it an object.
func LoadDir(dir string) (*Store, error) {
	st := New()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: load %s: %w", dir, err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue // top-level files are not part of any bucket
		}
		bucket := ent.Name()
		root := filepath.Join(dir, bucket)
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			st.Put(bucket, strings.ReplaceAll(filepath.ToSlash(rel), "//", "/"), data)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("store: load bucket %s: %w", bucket, err)
		}
	}
	return st, nil
}
