package store

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("hello"))
	got, err := s.Get("b", "k")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := s.Get("b", "missing"); err == nil {
		t.Error("missing key should error")
	}
	if _, err := s.Get("nobucket", "k"); err == nil {
		t.Error("missing bucket should error")
	}
}

func TestCreateBucket(t *testing.T) {
	s := New()
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateBucket("b"); err == nil {
		t.Error("duplicate bucket should error")
	}
	if got := s.Buckets(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Buckets = %v", got)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("x"))
	s.Delete("b", "k")
	if _, err := s.Get("b", "k"); err == nil {
		t.Error("deleted key should be gone")
	}
	s.Delete("b", "never-existed") // no panic
	s.Delete("nobucket", "k")
}

func TestSize(t *testing.T) {
	s := New()
	s.Put("b", "k", make([]byte, 123))
	n, err := s.Size("b", "k")
	if err != nil || n != 123 {
		t.Fatalf("Size = %d, %v", n, err)
	}
}

func TestGetRange(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("0123456789"))
	got, err := s.GetRange("b", "k", 2, 5)
	if err != nil || string(got) != "2345" {
		t.Fatalf("GetRange = %q, %v", got, err)
	}
	// Clamp past end.
	got, err = s.GetRange("b", "k", 8, 100)
	if err != nil || string(got) != "89" {
		t.Fatalf("clamped GetRange = %q, %v", got, err)
	}
	// Unsatisfiable.
	if _, err := s.GetRange("b", "k", 10, 12); err == nil {
		t.Error("start past end should error")
	}
	if _, err := s.GetRange("b", "k", -1, 3); err == nil {
		t.Error("negative start should error")
	}
	if _, err := s.GetRange("b", "k", 5, 2); err == nil {
		t.Error("inverted range should error")
	}
}

func TestGetRanges(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("abcdefgh"))
	got, err := s.GetRanges("b", "k", [][2]int64{{0, 1}, {4, 5}, {7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("ab"), []byte("ef"), []byte("h")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GetRanges = %q", got)
	}
	if _, err := s.GetRanges("b", "k", [][2]int64{{0, 1}, {99, 100}}); err == nil {
		t.Error("any bad range should fail the request")
	}
}

func TestListAndTableParts(t *testing.T) {
	s := New()
	for i := 0; i < 3; i++ {
		s.Put("tpch", PartitionKey("customer", i), []byte{byte(i)})
	}
	s.Put("tpch", "customer_index/part0000.csv", []byte("idx"))
	s.Put("tpch", "orders/part0000.csv", []byte("o"))
	parts := s.TableParts("tpch", "customer")
	if len(parts) != 3 {
		t.Fatalf("parts = %v", parts)
	}
	for i, p := range parts {
		if p != fmt.Sprintf("customer/part%04d.csv", i) {
			t.Errorf("part[%d] = %q", i, p)
		}
	}
	if n := s.TableSize("tpch", "customer"); n != 3 {
		t.Errorf("TableSize = %d", n)
	}
	if got := s.List("tpch", ""); len(got) != 5 {
		t.Errorf("List all = %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			s.Put("b", key, []byte{byte(i)})
			if _, err := s.Get("b", key); err != nil {
				t.Errorf("get %s: %v", key, err)
			}
			s.List("b", "")
		}(i)
	}
	wg.Wait()
	if got := len(s.List("b", "")); got != 16 {
		t.Errorf("keys = %d, want 16", got)
	}
}

// Property: GetRange(first, last) equals slicing the original payload.
func TestQuickRangeMatchesSlice(t *testing.T) {
	s := New()
	f := func(data []byte, a, b uint16) bool {
		if len(data) == 0 {
			return true
		}
		s.Put("q", "k", data)
		first := int64(a) % int64(len(data))
		last := first + int64(b)%8
		got, err := s.GetRange("q", "k", first, last)
		if err != nil {
			return false
		}
		end := last + 1
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		return bytes.Equal(got, data[first:end])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
