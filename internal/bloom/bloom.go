// Package bloom implements the Bloom filter PushdownDB ships to S3 in
// Bloom joins (Section V of the paper).
//
// The filter uses universal hashing, h_{a,b}(x) = ((a*x + b) mod n) mod m,
// because S3 Select supports only arithmetic operators (Section V-A1). The
// number of hash functions and bit-array length for a target false-positive
// rate p over s elements follow the paper's formulas:
//
//	k_p = log2(1/p),   m_p = s * |ln p| / (ln 2)^2
//
// Since S3 Select has neither bitwise operators nor binary data, the filter
// can be rendered as a string of '0'/'1' characters probed with SUBSTRING
// (the paper's Listing 1). SQLPredicate produces exactly that encoding;
// SQLPredicateBitwise produces the compact BLOOM_CONTAINS form of the
// paper's Suggestion 3 for the ablation benchmarks.
package bloom

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Filter is a Bloom filter over int64 keys.
type Filter struct {
	bits   []byte // bit i = bits[i/8] >> (i%8)
	m      int64  // bit-array length
	n      int64  // hash modulus: smallest prime >= max(m, 2)
	hashes [][2]int64
	count  int64
}

// Params reports the k and m the paper's formulas give for s elements at
// false-positive rate p.
func Params(s int, p float64) (k int, m int64) {
	if p <= 0 || p >= 1 {
		panic("bloom: false positive rate must be in (0,1)")
	}
	k = int(math.Ceil(math.Log2(1 / p)))
	if k < 1 {
		k = 1
	}
	m = int64(math.Ceil(float64(s) * math.Abs(math.Log(p)) / (math.Ln2 * math.Ln2)))
	if m < 8 {
		m = 8
	}
	return k, m
}

// New builds a filter sized for expected elements at target FPR p. The rng
// seeds the universal hash coefficients; pass a deterministic source for
// reproducible SQL.
func New(expected int, p float64, rng *rand.Rand) *Filter {
	k, m := Params(expected, p)
	// The paper only requires n prime and >= m. Using n barely above m
	// makes ((a*x+b) mod n) mod m badly correlated for sequential keys
	// (TPC-H keys are sequential), inflating the realized FPR well above
	// p; a much larger prime washes the stride structure out while
	// keeping the identical SQL shape.
	n := nextPrime(maxInt64(64*m, 1<<20))
	f := &Filter{
		bits: make([]byte, (m+7)/8),
		m:    m,
		n:    n,
	}
	for i := 0; i < k; i++ {
		a := rng.Int63n(n-1) + 1 // a != 0
		b := rng.Int63n(n)
		f.hashes = append(f.hashes, [2]int64{a, b})
	}
	return f
}

// K returns the number of hash functions.
func (f *Filter) K() int { return len(f.hashes) }

// M returns the bit-array length.
func (f *Filter) M() int64 { return f.m }

// Count returns how many elements were added.
func (f *Filter) Count() int64 { return f.count }

func (f *Filter) pos(h [2]int64, x int64) int64 {
	p := ((h[0]*x + h[1]) % f.n) % f.m
	if p < 0 {
		p += f.m
	}
	return p
}

// Add inserts x.
func (f *Filter) Add(x int64) {
	for _, h := range f.hashes {
		p := f.pos(h, x)
		f.bits[p/8] |= 1 << uint(p%8)
	}
	f.count++
}

// Contains reports whether x may be in the set (no false negatives).
func (f *Filter) Contains(x int64) bool {
	for _, h := range f.hashes {
		p := f.pos(h, x)
		if f.bits[p/8]&(1<<uint(p%8)) == 0 {
			return false
		}
	}
	return true
}

// BitString renders the bit array as the '0'/'1' text S3 Select probes with
// SUBSTRING (position i+1 corresponds to bit i).
func (f *Filter) BitString() string {
	var b strings.Builder
	b.Grow(int(f.m))
	for i := int64(0); i < f.m; i++ {
		if f.bits[i/8]&(1<<uint(i%8)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// SQLPredicate renders the paper's Listing-1 predicate over attr: one
// SUBSTRING probe per hash function, ANDed. attr must be an integer column.
func (f *Filter) SQLPredicate(attr string) string {
	bitStr := f.BitString()
	var b strings.Builder
	for i, h := range f.hashes {
		if i > 0 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b,
			"SUBSTRING('%s', ((%d * CAST(%s AS INT) + %d) %% %d) %% %d + 1, 1) = '1'",
			bitStr, h[0], attr, h[1], f.n, f.m)
	}
	return b.String()
}

// SQLPredicateBitwise renders the Suggestion-3 BLOOM_CONTAINS form: the bit
// array hex-encoded once, probed with all hash functions in a single call.
// Requires selectengine Capabilities.AllowBloomContains.
func (f *Filter) SQLPredicateBitwise(attr string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "BLOOM_CONTAINS('%s', %d, %d", hexEncode(f.bits), f.m, f.n)
	for _, h := range f.hashes {
		fmt.Fprintf(&b, ", %d, %d", h[0], h[1])
	}
	fmt.Fprintf(&b, ", CAST(%s AS INT))", attr)
	return b.String()
}

const hexDigits = "0123456789abcdef"

func hexEncode(bs []byte) string {
	out := make([]byte, 2*len(bs))
	for i, x := range bs {
		out[2*i] = hexDigits[x>>4]
		out[2*i+1] = hexDigits[x&0x0f]
	}
	return string(out)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// nextPrime returns the smallest prime >= x (x >= 2).
func nextPrime(x int64) int64 {
	if x < 2 {
		return 2
	}
	for {
		if isPrime(x) {
			return x
		}
		x++
	}
}

func isPrime(x int64) bool {
	if x < 2 {
		return false
	}
	if x%2 == 0 {
		return x == 2
	}
	for d := int64(3); d*d <= x; d += 2 {
		if x%d == 0 {
			return false
		}
	}
	return true
}

// PredicateSizeEstimate estimates the SQL predicate bytes for s elements
// at FPR p: the m-character bit string plus ~96 bytes of arithmetic per
// hash probe. (The bit string is counted once: Fig. 4 of the paper runs
// FPR 1e-4 over ~6.8k build keys, which only fits the 256 KB limit under
// single-copy accounting.)
func PredicateSizeEstimate(s int, p float64) int64 {
	k, m := Params(s, p)
	return m + int64(k)*96
}

// DegradeFPR returns the smallest power-of-two multiple of targetFPR whose
// predicate for s elements fits maxSQLBytes — the Section V-B1 behaviour.
// ok is false when no FPR below 0.9 fits (the caller must fall back to a
// filtered join).
func DegradeFPR(s int, targetFPR float64, maxSQLBytes int) (fpr float64, ok bool) {
	const maxFPR = 0.9
	for fpr = targetFPR; fpr < maxFPR; fpr *= 2 {
		if PredicateSizeEstimate(s, fpr) <= int64(maxSQLBytes) {
			return fpr, true
		}
	}
	return fpr, false
}

// Fit builds a filter for keys whose string-encoded SQL predicate over attr
// fits within maxSQLBytes, starting at the target FPR and degrading it
// (doubling) as needed — the behaviour Section V-B1 describes. When even
// FPR maxFPR cannot fit, Fit returns ok=false and the caller must fall back
// to a filtered join. The returned fpr is the rate actually used.
func Fit(keys []int64, targetFPR float64, attr string, maxSQLBytes int, rng *rand.Rand) (f *Filter, sql string, fpr float64, ok bool) {
	fpr, ok = DegradeFPR(len(keys), targetFPR, maxSQLBytes)
	if !ok {
		return nil, "", fpr, false
	}
	for fpr < 0.9 {
		f = New(len(keys), fpr, rng)
		for _, k := range keys {
			f.Add(k)
		}
		sql = f.SQLPredicate(attr)
		if len(sql) <= maxSQLBytes {
			return f, sql, fpr, true
		}
		fpr *= 2
	}
	return nil, "", fpr, false
}
