package bloom

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pushdowndb/internal/expr"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

func TestParamsMatchPaperFormulas(t *testing.T) {
	k, m := Params(1000, 0.01)
	// k = log2(100) = 6.64 -> 7; m = 1000*4.605/0.4805 -> 9586
	if k != 7 {
		t.Errorf("k = %d, want 7", k)
	}
	wantM := int64(math.Ceil(1000 * math.Abs(math.Log(0.01)) / (math.Ln2 * math.Ln2)))
	if m != wantM {
		t.Errorf("m = %d, want %d", m, wantM)
	}
	// Lower FPR -> more hashes, more bits.
	k2, m2 := Params(1000, 0.0001)
	if k2 <= k || m2 <= m {
		t.Error("lower FPR must increase k and m")
	}
}

func TestParamsPanicsOnBadFPR(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Params(_, %v) should panic", p)
				}
			}()
			Params(10, p)
		}()
	}
}

func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := New(500, 0.01, rng)
	for i := int64(0); i < 500; i++ {
		f.Add(i * 3)
	}
	for i := int64(0); i < 500; i++ {
		if !f.Contains(i * 3) {
			t.Fatalf("false negative for %d", i*3)
		}
	}
}

func TestFalsePositiveRateIsReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := New(1000, 0.01, rng)
	for i := int64(0); i < 1000; i++ {
		f.Add(i)
	}
	fp := 0
	probes := 20000
	for i := 0; i < probes; i++ {
		if f.Contains(int64(1_000_000 + i)) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > 0.05 {
		t.Errorf("observed FPR %.4f way above target 0.01", rate)
	}
}

func TestBitString(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := New(10, 0.5, rng)
	f.Add(4)
	s := f.BitString()
	if int64(len(s)) != f.M() {
		t.Fatalf("bit string length %d != m %d", len(s), f.M())
	}
	if !strings.Contains(s, "1") {
		t.Error("no set bits after Add")
	}
	ones := strings.Count(s, "1")
	if ones > f.K() {
		t.Errorf("one element set %d bits > k %d", ones, f.K())
	}
}

// The critical equivalence: the SQL predicate evaluated by the select
// engine must agree exactly with Filter.Contains.
func TestSQLPredicateMatchesContains(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := New(100, 0.05, rng)
	for i := int64(0); i < 100; i += 2 {
		f.Add(i)
	}
	pred, err := sqlparse.ParseExpr(f.SQLPredicate("x"))
	if err != nil {
		t.Fatalf("generated SQL does not parse: %v", err)
	}
	ev := expr.New()
	for x := int64(0); x < 200; x++ {
		env := expr.MapEnv{"x": value.Str(value.Int(x).String())} // CSV string form
		got, err := ev.EvalBool(pred, env)
		if err != nil {
			t.Fatal(err)
		}
		if got != f.Contains(x) {
			t.Fatalf("SQL predicate and Contains disagree at %d: sql=%v contains=%v",
				x, got, f.Contains(x))
		}
	}
}

func TestSQLPredicateBitwiseMatchesContains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := New(64, 0.01, rng)
	for i := int64(0); i < 64; i++ {
		f.Add(i * 7)
	}
	pred, err := sqlparse.ParseExpr(f.SQLPredicateBitwise("x"))
	if err != nil {
		t.Fatalf("generated BLOOM_CONTAINS SQL does not parse: %v", err)
	}
	ev := expr.New()
	for x := int64(0); x < 500; x++ {
		got, err := ev.EvalBool(pred, expr.MapEnv{"x": value.Int(x)})
		if err != nil {
			t.Fatal(err)
		}
		if got != f.Contains(x) {
			t.Fatalf("bitwise predicate disagrees at %d", x)
		}
	}
}

func TestBitwisePredicateIsSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := New(5000, 0.01, rng)
	for i := int64(0); i < 5000; i++ {
		f.Add(i)
	}
	s1 := f.SQLPredicate("x")
	s2 := f.SQLPredicateBitwise("x")
	// Suggestion 3's entire point: the bitwise form is much more compact
	// (hex once vs '0'/'1' text repeated k times).
	if len(s2)*4 > len(s1) {
		t.Errorf("bitwise form %d bytes not much smaller than string form %d", len(s2), len(s1))
	}
}

func TestFitDegradesFPR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := make([]int64, 20000)
	for i := range keys {
		keys[i] = int64(i)
	}
	// A tight budget forces FPR degradation (Section V-B1).
	f, sql, fpr, ok := Fit(keys, 0.0001, "k", 64*1024, rng)
	if !ok {
		t.Fatal("Fit should succeed by degrading FPR")
	}
	if fpr <= 0.0001 {
		t.Errorf("FPR should have been degraded, got %v", fpr)
	}
	if len(sql) > 64*1024 {
		t.Errorf("sql length %d exceeds budget", len(sql))
	}
	for _, k := range keys[:100] {
		if !f.Contains(k) {
			t.Fatal("degraded filter lost an element")
		}
	}
}

func TestFitFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	keys := make([]int64, 3_000_000)
	for i := range keys {
		keys[i] = int64(i)
	}
	// 3M keys cannot fit a meaningful filter in 4 KB: must report ok=false
	// so the caller reverts to a filtered join.
	if _, _, _, ok := Fit(keys, 0.01, "k", 4*1024, rng); ok {
		t.Error("Fit should fall back for impossible budgets")
	}
}

func TestFitFitsWhenEasy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	keys := []int64{1, 5, 9}
	f, sql, fpr, ok := Fit(keys, 0.01, "k", selectengine.MaxSQLBytes, rng)
	if !ok || fpr != 0.01 {
		t.Fatalf("Fit small set: ok=%v fpr=%v", ok, fpr)
	}
	if f == nil || sql == "" {
		t.Fatal("missing filter or sql")
	}
}

func TestNextPrime(t *testing.T) {
	cases := map[int64]int64{1: 2, 2: 2, 3: 3, 4: 5, 8: 11, 90: 97, 97: 97, 100: 101}
	for in, want := range cases {
		if got := nextPrime(in); got != want {
			t.Errorf("nextPrime(%d) = %d, want %d", in, got, want)
		}
	}
}

// Property: no false negatives for arbitrary key sets.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(keys []int64, seed int64) bool {
		if len(keys) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		bf := New(len(keys), 0.01, rng)
		for _, k := range keys {
			bf.Add(k)
		}
		for _, k := range keys {
			if !bf.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: hex encoding matches the bit string bit for bit.
func TestQuickHexMatchesBitString(t *testing.T) {
	f := func(keys []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bf := New(len(keys)+1, 0.05, rng)
		for _, k := range keys {
			bf.Add(int64(k))
		}
		bs := bf.BitString()
		hx := hexEncode(bf.bits)
		hexVal := func(c byte) int {
			if c >= 'a' {
				return int(c-'a') + 10
			}
			return int(c - '0')
		}
		for i := 0; i < len(bs); i++ {
			byteIdx, bitIdx := i/8, i%8
			var v, pos int
			if bitIdx < 4 {
				v = hexVal(hx[2*byteIdx+1]) // low nibble is the second char
				pos = bitIdx
			} else {
				v = hexVal(hx[2*byteIdx])
				pos = bitIdx - 4
			}
			if (bs[i] == '1') != ((v>>uint(pos))&1 == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
