package bloom

import (
	"math/rand"
	"testing"
)

func BenchmarkAdd(b *testing.B) {
	f := New(1<<20, 0.01, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(int64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(1<<16, 0.01, rand.New(rand.NewSource(1)))
	for i := int64(0); i < 1<<16; i++ {
		f.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(int64(i))
	}
}

func BenchmarkSQLPredicate(b *testing.B) {
	f := New(4096, 0.01, rand.New(rand.NewSource(1)))
	for i := int64(0); i < 4096; i++ {
		f.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.SQLPredicate("o_custkey")
	}
}

func BenchmarkFitWithDegradation(b *testing.B) {
	keys := make([]int64, 50000)
	for i := range keys {
		keys[i] = int64(i)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := Fit(keys, 0.0001, "k", 256*1024, rng); !ok {
			b.Fatal("fit failed")
		}
	}
}
