package s3api_test

import (
	"testing"

	"pushdowndb/internal/s3api"
	"pushdowndb/internal/s3api/conformancetest"
	"pushdowndb/internal/store"
)

func TestInProcConformance(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Env {
		st := store.New()
		return conformancetest.Env{
			Backend: s3api.NewInProc(st),
			Put:     func(bucket, key string, data []byte) { st.Put(bucket, key, data) },
		}
	})
}
