package s3api

import (
	"context"
	"errors"
	"testing"
	"time"

	"pushdowndb/internal/store"
)

func faultFixture() *Fault {
	st := store.New()
	st.Put("b", "t/part0", []byte("a,b\n1,2\n"))
	return NewFault(NewInProc(st))
}

func TestFaultPassThrough(t *testing.T) {
	f := faultFixture()
	data, err := f.Get(context.Background(), "b", "t/part0")
	if err != nil || len(data) == 0 {
		t.Fatalf("pass-through get: %v", err)
	}
	keys, err := f.List(context.Background(), "b", "t/")
	if err != nil || len(keys) != 1 {
		t.Fatalf("pass-through list: %v %v", keys, err)
	}
}

func TestFaultFailWithScopesToOps(t *testing.T) {
	f := faultFixture()
	boom := errors.New("disk on fire")
	f.FailWith(boom)
	f.OnOps("get")
	_, err := f.Get(context.Background(), "b", "t/part0")
	if !errors.Is(err, boom) {
		t.Fatalf("get should fail: %v", err)
	}
	if KindOf(err) != KindInternal {
		t.Fatalf("injected failure should be KindInternal, got %q", KindOf(err))
	}
	// Other ops untouched.
	if _, err := f.Size(context.Background(), "b", "t/part0"); err != nil {
		t.Fatalf("size should pass: %v", err)
	}
	f.Reset()
	if _, err := f.Get(context.Background(), "b", "t/part0"); err != nil {
		t.Fatalf("reset should disarm: %v", err)
	}
}

func TestFaultStallHonorsContext(t *testing.T) {
	f := faultFixture()
	f.StallFor(time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Get(ctx, "b", "t/part0")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled get not cut by context: took %v", elapsed)
	}
	if KindOf(err) != KindCanceled {
		t.Fatalf("want KindCanceled, got %v (kind %q)", err, KindOf(err))
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause should be DeadlineExceeded: %v", err)
	}
}
