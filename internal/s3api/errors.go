package s3api

import (
	"context"
	"errors"
	"fmt"

	"pushdowndb/internal/store"
)

// Kind classifies a storage error so callers can branch without parsing
// message strings (and so the HTTP backend can carry the class across the
// wire as a header instead of a status-code guess).
type Kind string

const (
	// KindNotFound: the bucket or key does not exist.
	KindNotFound Kind = "not_found"
	// KindInvalidRange: a byte range was unsatisfiable (HTTP 416).
	KindInvalidRange Kind = "invalid_range"
	// KindBadRequest: the request was malformed (bad Select SQL, bad key).
	KindBadRequest Kind = "bad_request"
	// KindUnsupported: the operation needs a capability this backend does
	// not advertise.
	KindUnsupported Kind = "unsupported"
	// KindCanceled: the request's context was canceled or timed out.
	KindCanceled Kind = "canceled"
	// KindInternal: everything else (I/O failures, wire errors).
	KindInternal Kind = "internal"
)

// Error is the structured error every Backend method returns on failure:
// which operation, against which object, and what class of failure. It
// wraps the underlying cause, so errors.Is/As (including context.Canceled)
// keep working through it.
type Error struct {
	Op     string // "get", "get_range", "get_ranges", "select", "list", "size", "put"
	Bucket string
	Key    string
	Kind   Kind
	Err    error
}

// Error implements error.
func (e *Error) Error() string {
	target := e.Bucket
	if e.Key != "" {
		target = e.Bucket + "/" + e.Key
	}
	if e.Err != nil {
		return fmt.Sprintf("s3api: %s %s: %s", e.Op, target, e.Err)
	}
	return fmt.Sprintf("s3api: %s %s: %s", e.Op, target, e.Kind)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// KindOf returns the Kind of err if it is (or wraps) a *Error, and "" when
// it is not a storage error.
func KindOf(err error) Kind {
	var se *Error
	if errors.As(err, &se) {
		return se.Kind
	}
	return ""
}

// IsNotFound reports whether err is a storage miss (no such bucket/key).
func IsNotFound(err error) bool { return KindOf(err) == KindNotFound }

// NewError builds a structured backend error, classifying well-known
// causes: store sentinels map to their kinds, context cancellation maps to
// KindCanceled, and anything else takes the given default kind.
func NewError(op, bucket, key string, kind Kind, err error) *Error {
	switch {
	case errors.Is(err, store.ErrNotFound):
		kind = KindNotFound
	case errors.Is(err, store.ErrInvalidRange):
		kind = KindInvalidRange
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		kind = KindCanceled
	}
	return &Error{Op: op, Bucket: bucket, Key: key, Kind: kind, Err: err}
}

// ctxErr returns a KindCanceled error when ctx is already done, nil
// otherwise. Backends call it on entry so a canceled fan-out stops issuing
// requests promptly.
func ctxErr(ctx context.Context, op, bucket, key string) error {
	if err := ctx.Err(); err != nil {
		return &Error{Op: op, Bucket: bucket, Key: key, Kind: KindCanceled, Err: err}
	}
	return nil
}
