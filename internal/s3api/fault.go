package s3api

import (
	"context"
	"sync"
	"time"

	"pushdowndb/internal/selectengine"
)

// Fault wraps a Backend and injects failures or stalls on demand. It
// exists for server-grade testing: a query server must cut a stalled
// storage call with its per-request deadline and surface a structured
// timeout instead of hanging the client, and the only way to pin that is
// a backend that misbehaves on cue. Configuration may change while
// requests are in flight (all methods are safe for concurrent use); the
// zero configuration passes every call straight through.
type Fault struct {
	Backend

	mu    sync.Mutex
	stall time.Duration
	fail  error
	ops   map[string]bool // nil = every op
}

// NewFault wraps b with no faults armed.
func NewFault(b Backend) *Fault { return &Fault{Backend: b} }

// StallFor makes matching calls sleep for d before proceeding. The sleep
// honors context cancellation: a canceled call returns a KindCanceled
// error instead of completing, exactly like a real storage request cut
// mid-flight.
func (f *Fault) StallFor(d time.Duration) {
	f.mu.Lock()
	f.stall = d
	f.mu.Unlock()
}

// FailWith makes matching calls return err immediately.
func (f *Fault) FailWith(err error) {
	f.mu.Lock()
	f.fail = err
	f.mu.Unlock()
}

// OnOps restricts the armed faults to the named backend operations
// ("get", "get_range", "get_ranges", "select", "list", "size"); with no
// arguments every operation is affected again.
func (f *Fault) OnOps(ops ...string) {
	f.mu.Lock()
	if len(ops) == 0 {
		f.ops = nil
	} else {
		f.ops = map[string]bool{}
		for _, op := range ops {
			f.ops[op] = true
		}
	}
	f.mu.Unlock()
}

// Reset disarms every fault.
func (f *Fault) Reset() {
	f.mu.Lock()
	f.stall = 0
	f.fail = nil
	f.ops = nil
	f.mu.Unlock()
}

// inject applies the armed faults to one call; a non-nil return aborts
// the call with that error.
func (f *Fault) inject(ctx context.Context, op, bucket, key string) error {
	f.mu.Lock()
	stall, fail, ops := f.stall, f.fail, f.ops
	f.mu.Unlock()
	if ops != nil && !ops[op] {
		return nil
	}
	if stall > 0 {
		t := time.NewTimer(stall)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return NewError(op, bucket, key, KindCanceled, ctx.Err())
		}
	}
	if fail != nil {
		return NewError(op, bucket, key, KindInternal, fail)
	}
	return nil
}

// Get implements Backend.
func (f *Fault) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	if err := f.inject(ctx, "get", bucket, key); err != nil {
		return nil, err
	}
	return f.Backend.Get(ctx, bucket, key)
}

// GetRange implements Backend.
func (f *Fault) GetRange(ctx context.Context, bucket, key string, first, last int64) ([]byte, error) {
	if err := f.inject(ctx, "get_range", bucket, key); err != nil {
		return nil, err
	}
	return f.Backend.GetRange(ctx, bucket, key, first, last)
}

// GetRanges implements Backend.
func (f *Fault) GetRanges(ctx context.Context, bucket, key string, ranges [][2]int64) ([][]byte, error) {
	if err := f.inject(ctx, "get_ranges", bucket, key); err != nil {
		return nil, err
	}
	return f.Backend.GetRanges(ctx, bucket, key, ranges)
}

// Select implements Backend.
func (f *Fault) Select(ctx context.Context, bucket, key string, req selectengine.Request) (*selectengine.Result, error) {
	if err := f.inject(ctx, "select", bucket, key); err != nil {
		return nil, err
	}
	return f.Backend.Select(ctx, bucket, key, req)
}

// List implements Backend.
func (f *Fault) List(ctx context.Context, bucket, prefix string) ([]string, error) {
	if err := f.inject(ctx, "list", bucket, prefix); err != nil {
		return nil, err
	}
	return f.Backend.List(ctx, bucket, prefix)
}

// Size implements Backend.
func (f *Fault) Size(ctx context.Context, bucket, key string) (int64, error) {
	if err := f.inject(ctx, "size", bucket, key); err != nil {
		return 0, err
	}
	return f.Backend.Size(ctx, bucket, key)
}

// Put implements Putter when the wrapped backend does (loading helper).
func (f *Fault) Put(ctx context.Context, bucket, key string, data []byte) error {
	p, ok := f.Backend.(Putter)
	if !ok {
		return NewError("put", bucket, key, KindUnsupported, nil)
	}
	return p.Put(ctx, bucket, key, data)
}
