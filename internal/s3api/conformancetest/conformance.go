// Package conformancetest is the shared behavioural suite every
// s3api.Backend implementation must pass. Each backend package runs it
// from its own tests (s3api, s3http, localfs), so the engine can rely on
// identical Get/GetRange/GetRanges/Select/List/Size semantics — including
// structured error kinds and context handling — whichever store a table
// lives on.
package conformancetest

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"pushdowndb/internal/csvx"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
)

// Env is one backend under test: the backend plus a loader for seeding
// objects (which may bypass the backend, e.g. writing straight into the
// store behind an HTTP server).
type Env struct {
	Backend s3api.Backend
	// Put seeds an object; the suite calls it before exercising reads.
	Put func(bucket, key string, data []byte)
}

// Maker builds a fresh Env for one subtest.
type Maker func(t *testing.T) Env

// Run exercises the full conformance suite against the backend mk builds.
func Run(t *testing.T, mk Maker) {
	t.Run("GetRoundTrip", func(t *testing.T) { testGetRoundTrip(t, mk(t)) })
	t.Run("EmptyObject", func(t *testing.T) { testEmptyObject(t, mk(t)) })
	t.Run("MissingKeyKinds", func(t *testing.T) { testMissingKeyKinds(t, mk(t)) })
	t.Run("Ranges", func(t *testing.T) { testRanges(t, mk(t)) })
	t.Run("MultiRanges", func(t *testing.T) { testMultiRanges(t, mk(t)) })
	t.Run("MultiRangeEdges", func(t *testing.T) { testMultiRangeEdges(t, mk(t)) })
	t.Run("Select", func(t *testing.T) { testSelect(t, mk(t)) })
	t.Run("ListAndSize", func(t *testing.T) { testListAndSize(t, mk(t)) })
	t.Run("CanceledContext", func(t *testing.T) { testCanceledContext(t, mk(t)) })
	t.Run("SelfDescription", func(t *testing.T) { testSelfDescription(t, mk(t)) })
}

func ctxb() context.Context { return context.Background() }

// wantKind asserts err is a structured *s3api.Error of the given kind with
// the object coordinates filled in.
func wantKind(t *testing.T, err error, kind s3api.Kind, op string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected a %s error, got nil", op, kind)
	}
	var se *s3api.Error
	if !errors.As(err, &se) {
		t.Fatalf("%s: error %v (%T) is not a *s3api.Error", op, err, err)
	}
	if se.Kind != kind {
		t.Errorf("%s: kind = %s, want %s (err: %v)", op, se.Kind, kind, err)
	}
	if se.Op == "" || se.Bucket == "" {
		t.Errorf("%s: error is missing Op/Bucket context: %+v", op, se)
	}
}

func testGetRoundTrip(t *testing.T, env Env) {
	env.Put("b", "dir/k.bin", []byte("payload"))
	got, err := env.Backend.Get(ctxb(), "b", "dir/k.bin")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	n, err := env.Backend.Size(ctxb(), "b", "dir/k.bin")
	if err != nil || n != 7 {
		t.Fatalf("Size = %d, %v", n, err)
	}
}

func testEmptyObject(t *testing.T, env Env) {
	env.Put("b", "empty", nil)
	got, err := env.Backend.Get(ctxb(), "b", "empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("Get(empty) = %q, %v", got, err)
	}
	n, err := env.Backend.Size(ctxb(), "b", "empty")
	if err != nil || n != 0 {
		t.Fatalf("Size(empty) = %d, %v", n, err)
	}
	// No byte of an empty object is addressable: every range is invalid.
	_, err = env.Backend.GetRange(ctxb(), "b", "empty", 0, 0)
	wantKind(t, err, s3api.KindInvalidRange, "GetRange(empty)")
}

func testMissingKeyKinds(t *testing.T, env Env) {
	env.Put("b", "exists", []byte("x"))
	_, err := env.Backend.Get(ctxb(), "b", "missing")
	wantKind(t, err, s3api.KindNotFound, "Get(missing key)")
	_, err = env.Backend.Get(ctxb(), "nobucket", "k")
	wantKind(t, err, s3api.KindNotFound, "Get(missing bucket)")
	_, err = env.Backend.GetRange(ctxb(), "b", "missing", 0, 1)
	wantKind(t, err, s3api.KindNotFound, "GetRange(missing)")
	_, err = env.Backend.GetRanges(ctxb(), "b", "missing", [][2]int64{{0, 0}})
	wantKind(t, err, s3api.KindNotFound, "GetRanges(missing)")
	_, err = env.Backend.Size(ctxb(), "b", "missing")
	wantKind(t, err, s3api.KindNotFound, "Size(missing)")
	_, err = env.Backend.Select(ctxb(), "b", "missing",
		selectengine.Request{SQL: "SELECT * FROM S3Object"})
	wantKind(t, err, s3api.KindNotFound, "Select(missing)")
}

func testRanges(t *testing.T, env Env) {
	env.Put("b", "k", []byte("0123456789"))
	got, err := env.Backend.GetRange(ctxb(), "b", "k", 2, 4)
	if err != nil || string(got) != "234" {
		t.Fatalf("GetRange = %q, %v", got, err)
	}
	// The last byte clamps to the object end.
	got, err = env.Backend.GetRange(ctxb(), "b", "k", 8, 100)
	if err != nil || string(got) != "89" {
		t.Fatalf("GetRange(clamped) = %q, %v", got, err)
	}
	// A first offset at/past the end is unsatisfiable.
	_, err = env.Backend.GetRange(ctxb(), "b", "k", 10, 12)
	wantKind(t, err, s3api.KindInvalidRange, "GetRange(past end)")
	_, err = env.Backend.GetRange(ctxb(), "b", "k", -1, 3)
	wantKind(t, err, s3api.KindInvalidRange, "GetRange(negative)")
	_, err = env.Backend.GetRange(ctxb(), "b", "k", 5, 3)
	wantKind(t, err, s3api.KindInvalidRange, "GetRange(inverted)")
}

func testMultiRanges(t *testing.T, env Env) {
	env.Put("b", "k", []byte("abcdefghij"))
	parts, err := env.Backend.GetRanges(ctxb(), "b", "k", [][2]int64{{0, 1}, {5, 6}, {9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("ab"), []byte("fg"), []byte("j")}
	if !reflect.DeepEqual(parts, want) {
		t.Errorf("GetRanges = %q, want %q", parts, want)
	}
	// Single range through the same API.
	parts, err = env.Backend.GetRanges(ctxb(), "b", "k", [][2]int64{{2, 4}})
	if err != nil || len(parts) != 1 || string(parts[0]) != "cde" {
		t.Errorf("single-range GetRanges = %q, %v", parts, err)
	}
	// One bad range fails the whole request.
	_, err = env.Backend.GetRanges(ctxb(), "b", "k", [][2]int64{{0, 1}, {50, 60}})
	wantKind(t, err, s3api.KindInvalidRange, "GetRanges(one bad)")
}

// testMultiRangeEdges pins the GetRanges semantics the IndexScan fetch
// path depends on, identically on every backend: request order preserved
// (no server-side sorting), adjacent ranges returned as separate parts,
// per-range EOF clamping, an empty range list succeeding with an empty
// result, and missing objects classified KindNotFound whatever the range
// list looks like.
func testMultiRangeEdges(t *testing.T, env Env) {
	env.Put("b", "k", []byte("abcdefghij"))
	// Unsorted ranges come back in request order, not offset order.
	parts, err := env.Backend.GetRanges(ctxb(), "b", "k", [][2]int64{{5, 6}, {0, 1}, {8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("fg"), []byte("ab"), []byte("i")}
	if !reflect.DeepEqual(parts, want) {
		t.Errorf("unsorted GetRanges = %q, want %q (request order)", parts, want)
	}
	// Adjacent ranges are not merged by the backend: coalescing is the
	// client's decision.
	parts, err = env.Backend.GetRanges(ctxb(), "b", "k", [][2]int64{{0, 1}, {2, 3}})
	if err != nil || len(parts) != 2 || string(parts[0]) != "ab" || string(parts[1]) != "cd" {
		t.Errorf("adjacent GetRanges = %q, %v; want separate \"ab\" \"cd\"", parts, err)
	}
	// A last offset beyond EOF clamps per range (matching GetRange).
	parts, err = env.Backend.GetRanges(ctxb(), "b", "k", [][2]int64{{0, 0}, {8, 100}})
	if err != nil || len(parts) != 2 || string(parts[1]) != "ij" {
		t.Errorf("clamped GetRanges = %q, %v; want [\"a\" \"ij\"]", parts, err)
	}
	// The same range twice is served twice (the fetch path may retry a
	// batch; the backend must not dedupe).
	parts, err = env.Backend.GetRanges(ctxb(), "b", "k", [][2]int64{{2, 4}, {2, 4}})
	if err != nil || len(parts) != 2 || string(parts[0]) != "cde" || string(parts[1]) != "cde" {
		t.Errorf("duplicate GetRanges = %q, %v", parts, err)
	}
	// An empty range list is a successful no-op on an existing object...
	parts, err = env.Backend.GetRanges(ctxb(), "b", "k", nil)
	if err != nil || len(parts) != 0 {
		t.Errorf("empty GetRanges = %q, %v; want empty success", parts, err)
	}
	// ...and KindNotFound on a missing one — the not-found signal must not
	// depend on how many ranges the probe resolved.
	_, err = env.Backend.GetRanges(ctxb(), "b", "missing", nil)
	wantKind(t, err, s3api.KindNotFound, "GetRanges(missing, empty)")
	_, err = env.Backend.GetRanges(ctxb(), "nobucket", "k", [][2]int64{{0, 1}})
	wantKind(t, err, s3api.KindNotFound, "GetRanges(missing bucket)")
}

func testSelect(t *testing.T, env Env) {
	data := csvx.Encode([]string{"k", "v"}, [][]string{{"1", "10"}, {"2", "20"}, {"3", "30"}})
	env.Put("b", "t.csv", data)
	res, err := env.Backend.Select(ctxb(), "b", "t.csv", selectengine.Request{
		SQL: "SELECT k FROM S3Object WHERE v >= 20", HasHeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "2" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Stats.BytesScanned != int64(len(data)) {
		t.Errorf("scan stats wrong: %+v", res.Stats)
	}
	// Unsupported SQL surfaces a structured (non-not-found) error.
	_, err = env.Backend.Select(ctxb(), "b", "t.csv", selectengine.Request{
		SQL: "SELECT k FROM S3Object ORDER BY k", HasHeader: true,
	})
	if err == nil {
		t.Fatal("ORDER BY must be rejected by the select engine")
	}
	var se *s3api.Error
	if !errors.As(err, &se) || se.Kind == s3api.KindNotFound {
		t.Errorf("select rejection should be a structured non-not-found error, got %v", err)
	}
	// A request claiming a capability the backend does not advertise is
	// clamped and rejected as unsupported — identically on every backend.
	// (These suites run backends with default, extension-free caps.)
	_, err = env.Backend.Select(ctxb(), "b", "t.csv", selectengine.Request{
		SQL: "SELECT k, SUM(v) FROM S3Object GROUP BY k", HasHeader: true,
		Capabilities: selectengine.Capabilities{AllowGroupBy: true},
	})
	wantKind(t, err, s3api.KindUnsupported, "Select(unadvertised GROUP BY)")
}

func testListAndSize(t *testing.T, env Env) {
	env.Put("b", "t/part0001.csv", []byte("defg"))
	env.Put("b", "t/part0000.csv", []byte("abc"))
	env.Put("b", "u/part0000.csv", []byte("x"))
	keys, err := env.Backend.List(ctxb(), "b", "t/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"t/part0000.csv", "t/part0001.csv"}) {
		t.Errorf("List = %v (must be sorted and prefix-filtered)", keys)
	}
	// Missing buckets and unmatched prefixes list empty, not an error.
	keys, err = env.Backend.List(ctxb(), "nobucket", "")
	if err != nil || len(keys) != 0 {
		t.Errorf("List(missing bucket) = %v, %v; want empty", keys, err)
	}
	keys, err = env.Backend.List(ctxb(), "b", "zzz")
	if err != nil || len(keys) != 0 {
		t.Errorf("List(unmatched prefix) = %v, %v; want empty", keys, err)
	}
	n, err := env.Backend.Size(ctxb(), "b", "t/part0001.csv")
	if err != nil || n != 4 {
		t.Errorf("Size = %d, %v", n, err)
	}
}

func testCanceledContext(t *testing.T, env Env) {
	env.Put("b", "k", []byte("data"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := env.Backend.Get(ctx, "b", "k"); err == nil {
		t.Error("Get with canceled context must fail")
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Get should wrap context.Canceled, got %v", err)
	}
	if _, err := env.Backend.Select(ctx, "b", "k",
		selectengine.Request{SQL: "SELECT * FROM S3Object"}); err == nil {
		t.Error("Select with canceled context must fail")
	}
}

func testSelfDescription(t *testing.T, env Env) {
	p := env.Backend.Profile()
	if !p.Defined() {
		t.Error("backend must advertise a defined (named) profile")
	}
	if p.NetworkBytesPerSec <= 0 || p.RequestRTTSec <= 0 {
		t.Errorf("profile must carry positive performance terms: %+v", p)
	}
	_ = env.Backend.Capabilities() // must not panic; flags are backend policy
}
