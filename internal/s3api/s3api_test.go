package s3api

import (
	"context"
	"errors"
	"testing"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

// The behavioural surface (Get/GetRange/GetRanges/Select/List/Size, error
// kinds, context handling) is covered by the shared suite in
// conformance_test.go; these tests pin InProc-specific construction and
// error classification details.

func TestInProcSelfDescription(t *testing.T) {
	st := store.New()
	plain := NewInProc(st)
	if caps := plain.Capabilities(); caps.AllowGroupBy || caps.AllowBloomContains {
		t.Errorf("default capabilities must be off (2020 AWS): %+v", caps)
	}
	if p := plain.Profile(); p != cloudsim.S3Profile() {
		t.Errorf("default profile = %+v, want S3Profile", p)
	}

	custom := NewInProc(st,
		WithCapabilities(selectengine.Capabilities{AllowGroupBy: true}),
		WithProfile(cloudsim.CrossRegionS3Profile()))
	if !custom.Capabilities().AllowGroupBy {
		t.Error("WithCapabilities not applied")
	}
	if custom.Profile().Name != "s3-cross-region" {
		t.Errorf("WithProfile not applied: %+v", custom.Profile())
	}
}

func TestInProcErrorClassification(t *testing.T) {
	st := store.New()
	c := NewInProc(st)
	ctx := context.Background()
	st.Put("b", "t.csv", csvx.Encode([]string{"a"}, [][]string{{"1"}}))

	_, err := c.Get(ctx, "b", "missing")
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("Get error %v is not *Error", err)
	}
	if se.Kind != KindNotFound || se.Op != "get" || se.Bucket != "b" || se.Key != "missing" {
		t.Errorf("error context = %+v", se)
	}
	if !IsNotFound(err) {
		t.Error("IsNotFound should see through the wrap")
	}
	if !errors.Is(err, store.ErrNotFound) {
		t.Error("the store sentinel should still unwrap")
	}

	_, err = c.Select(ctx, "b", "t.csv", selectengine.Request{
		SQL: "SELECT a FROM S3Object ORDER BY a", HasHeader: true,
	})
	if KindOf(err) != KindBadRequest {
		t.Errorf("select rejection kind = %q, want bad_request (%v)", KindOf(err), err)
	}
	if KindOf(errors.New("plain")) != "" {
		t.Error("KindOf(non-storage error) must be empty")
	}
}

func TestInProcCanceledContextKind(t *testing.T) {
	st := store.New()
	st.Put("b", "k", []byte("x"))
	c := NewInProc(st)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Get(ctx, "b", "k")
	if KindOf(err) != KindCanceled || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Get = %v (kind %q)", err, KindOf(err))
	}
}
