package s3api

import (
	"reflect"
	"testing"

	"pushdowndb/internal/csvx"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

func newClient(t *testing.T) (*store.Store, *InProc) {
	t.Helper()
	st := store.New()
	return st, NewInProc(st)
}

func TestInProcGet(t *testing.T) {
	st, c := newClient(t)
	st.Put("b", "k", []byte("payload"))
	got, err := c.Get("b", "k")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := c.Get("b", "missing"); err == nil {
		t.Error("missing key should error")
	}
}

func TestInProcRanges(t *testing.T) {
	st, c := newClient(t)
	st.Put("b", "k", []byte("0123456789"))
	got, err := c.GetRange("b", "k", 2, 4)
	if err != nil || string(got) != "234" {
		t.Fatalf("GetRange = %q, %v", got, err)
	}
	parts, err := c.GetRanges("b", "k", [][2]int64{{0, 0}, {9, 9}})
	if err != nil || string(parts[0]) != "0" || string(parts[1]) != "9" {
		t.Fatalf("GetRanges = %q, %v", parts, err)
	}
}

func TestInProcSelect(t *testing.T) {
	st, c := newClient(t)
	st.Put("b", "t.csv", csvx.Encode([]string{"a"}, [][]string{{"1"}, {"2"}, {"3"}}))
	res, err := c.Select("b", "t.csv", selectengine.Request{
		SQL: "SELECT a FROM S3Object WHERE a >= 2", HasHeader: true,
	})
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("Select = %v, %v", res, err)
	}
	if _, err := c.Select("b", "nope", selectengine.Request{SQL: "SELECT * FROM S3Object"}); err == nil {
		t.Error("missing object should error")
	}
}

func TestInProcListSize(t *testing.T) {
	st, c := newClient(t)
	st.Put("b", "t/part0000.csv", []byte("xy"))
	st.Put("b", "t/part0001.csv", []byte("z"))
	keys, err := c.List("b", "t/")
	if err != nil || !reflect.DeepEqual(keys, []string{"t/part0000.csv", "t/part0001.csv"}) {
		t.Fatalf("List = %v, %v", keys, err)
	}
	n, err := c.Size("b", "t/part0000.csv")
	if err != nil || n != 2 {
		t.Fatalf("Size = %d, %v", n, err)
	}
}
