// Package s3api defines the client surface PushdownDB uses to talk to the
// storage service, with an in-process implementation. A wire-protocol
// implementation over HTTP lives in internal/s3http; both satisfy Client,
// so the engine is independent of whether the store is embedded (fast
// tests, benchmarks) or remote (integration tests, cmd/s3server).
package s3api

import (
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

// Client is the storage-service API surface: plain and ranged GETs, the
// multi-range GET extension (paper Suggestion 1), listing, and S3 Select.
type Client interface {
	// Get returns a whole object.
	Get(bucket, key string) ([]byte, error)
	// GetRange returns the inclusive byte range [first, last].
	GetRange(bucket, key string, first, last int64) ([]byte, error)
	// GetRanges returns several inclusive ranges in one request.
	GetRanges(bucket, key string, ranges [][2]int64) ([][]byte, error)
	// Select runs an S3 Select request against one object.
	Select(bucket, key string, req selectengine.Request) (*selectengine.Result, error)
	// List returns the keys under a prefix, sorted.
	List(bucket, prefix string) ([]string, error)
	// Size returns an object's length.
	Size(bucket, key string) (int64, error)
}

// InProc is the embedded Client over a *store.Store.
type InProc struct {
	store *store.Store
}

// NewInProc wraps st.
func NewInProc(st *store.Store) *InProc { return &InProc{store: st} }

// Get implements Client.
func (c *InProc) Get(bucket, key string) ([]byte, error) {
	return c.store.Get(bucket, key)
}

// GetRange implements Client.
func (c *InProc) GetRange(bucket, key string, first, last int64) ([]byte, error) {
	return c.store.GetRange(bucket, key, first, last)
}

// GetRanges implements Client.
func (c *InProc) GetRanges(bucket, key string, ranges [][2]int64) ([][]byte, error) {
	return c.store.GetRanges(bucket, key, ranges)
}

// Select implements Client.
func (c *InProc) Select(bucket, key string, req selectengine.Request) (*selectengine.Result, error) {
	data, err := c.store.Get(bucket, key)
	if err != nil {
		return nil, err
	}
	return selectengine.Execute(data, req)
}

// List implements Client.
func (c *InProc) List(bucket, prefix string) ([]string, error) {
	return c.store.List(bucket, prefix), nil
}

// Size implements Client.
func (c *InProc) Size(bucket, key string) (int64, error) {
	return c.store.Size(bucket, key)
}
