// Package s3api defines the storage-backend surface PushdownDB uses to
// talk to object stores, with an in-process implementation. Two more
// implementations live in internal/s3http (the simulated S3 wire protocol)
// and internal/localfs (objects laid out on the local filesystem); all
// three satisfy Backend and pass the shared conformance suite in
// s3api/conformancetest, so the engine is independent of where a table's
// bytes actually live.
//
// A Backend is context-aware (cancellation propagates through the
// engine's partition fan-outs) and self-describing: it advertises the
// S3 Select Capabilities its select engine supports and a cloudsim.Profile
// (bandwidth, request latency, request/transfer pricing) that the planner
// prices strategies with. Errors are structured *Error values carrying the
// operation, the object, and a Kind.
package s3api

import (
	"context"
	"errors"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

// Profile is the performance/pricing self-description a backend
// advertises; see cloudsim.Profile.
type Profile = cloudsim.Profile

// Backend is the storage-service API surface: plain and ranged GETs, the
// multi-range GET extension (paper Suggestion 1), listing, S3 Select, and
// the backend's self-description (capabilities and cost profile).
type Backend interface {
	// Get returns a whole object.
	Get(ctx context.Context, bucket, key string) ([]byte, error)
	// GetRange returns the inclusive byte range [first, last]; last is
	// clamped to the object end, a first at/past the end is a
	// KindInvalidRange error.
	GetRange(ctx context.Context, bucket, key string, first, last int64) ([]byte, error)
	// GetRanges returns several inclusive ranges in one request.
	GetRanges(ctx context.Context, bucket, key string, ranges [][2]int64) ([][]byte, error)
	// Select runs an S3 Select request against one object.
	Select(ctx context.Context, bucket, key string, req selectengine.Request) (*selectengine.Result, error)
	// List returns the keys under a prefix, sorted. A missing bucket
	// lists empty, not an error (matching S3).
	List(ctx context.Context, bucket, prefix string) ([]string, error)
	// Size returns an object's length.
	Size(ctx context.Context, bucket, key string) (int64, error)
	// Capabilities advertises the S3 Select extensions this backend's
	// select engine supports (the Section-X Suggestion flags).
	Capabilities() selectengine.Capabilities
	// Profile advertises the backend's performance and pricing profile
	// for the virtual clock and the planner.
	Profile() Profile
}

// Putter is the optional write surface backends expose for loading data
// (dataset preparation; not part of any query's metered cost).
type Putter interface {
	Put(ctx context.Context, bucket, key string, data []byte) error
}

// InProc is the embedded Backend over a *store.Store, simulating in-region
// S3: it advertises cloudsim.S3Profile by default.
type InProc struct {
	store   *store.Store
	caps    selectengine.Capabilities
	profile Profile
}

// InProcOption configures NewInProc.
type InProcOption func(*InProc)

// WithCapabilities sets the S3 Select extension flags the backend's select
// engine accepts (all off by default, matching 2020 AWS).
func WithCapabilities(caps selectengine.Capabilities) InProcOption {
	return func(c *InProc) { c.caps = caps }
}

// WithProfile overrides the advertised performance/pricing profile
// (default cloudsim.S3Profile).
func WithProfile(p Profile) InProcOption {
	return func(c *InProc) { c.profile = p }
}

// NewInProc wraps st.
func NewInProc(st *store.Store, opts ...InProcOption) *InProc {
	c := &InProc{store: st, profile: cloudsim.S3Profile()}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Get implements Backend.
func (c *InProc) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	if err := ctxErr(ctx, "get", bucket, key); err != nil {
		return nil, err
	}
	data, err := c.store.Get(bucket, key)
	if err != nil {
		return nil, NewError("get", bucket, key, KindInternal, err)
	}
	return data, nil
}

// GetRange implements Backend.
func (c *InProc) GetRange(ctx context.Context, bucket, key string, first, last int64) ([]byte, error) {
	if err := ctxErr(ctx, "get_range", bucket, key); err != nil {
		return nil, err
	}
	data, err := c.store.GetRange(bucket, key, first, last)
	if err != nil {
		return nil, NewError("get_range", bucket, key, KindInternal, err)
	}
	return data, nil
}

// GetRanges implements Backend.
func (c *InProc) GetRanges(ctx context.Context, bucket, key string, ranges [][2]int64) ([][]byte, error) {
	if err := ctxErr(ctx, "get_ranges", bucket, key); err != nil {
		return nil, err
	}
	parts, err := c.store.GetRanges(bucket, key, ranges)
	if err != nil {
		return nil, NewError("get_ranges", bucket, key, KindInternal, err)
	}
	return parts, nil
}

// Select implements Backend. The request's capabilities are clamped to
// what this backend advertises, so asking for a switched-off extension
// fails with KindUnsupported on every backend alike.
func (c *InProc) Select(ctx context.Context, bucket, key string, req selectengine.Request) (*selectengine.Result, error) {
	if err := ctxErr(ctx, "select", bucket, key); err != nil {
		return nil, err
	}
	data, err := c.store.Get(bucket, key)
	if err != nil {
		return nil, NewError("select", bucket, key, KindInternal, err)
	}
	req.Capabilities = req.Capabilities.Intersect(c.caps)
	res, err := selectengine.Execute(data, req)
	if err != nil {
		return nil, NewError("select", bucket, key, selectKind(err), err)
	}
	return res, nil
}

// selectKind classifies a select-engine rejection: capability misses are
// KindUnsupported, everything else is a bad request.
func selectKind(err error) Kind {
	if errors.Is(err, selectengine.ErrUnsupported) {
		return KindUnsupported
	}
	return KindBadRequest
}

// List implements Backend.
func (c *InProc) List(ctx context.Context, bucket, prefix string) ([]string, error) {
	if err := ctxErr(ctx, "list", bucket, prefix); err != nil {
		return nil, err
	}
	return c.store.List(bucket, prefix), nil
}

// Size implements Backend.
func (c *InProc) Size(ctx context.Context, bucket, key string) (int64, error) {
	if err := ctxErr(ctx, "size", bucket, key); err != nil {
		return 0, err
	}
	n, err := c.store.Size(bucket, key)
	if err != nil {
		return 0, NewError("size", bucket, key, KindInternal, err)
	}
	return n, nil
}

// Put implements Putter (loading helper; not a metered query operation).
func (c *InProc) Put(ctx context.Context, bucket, key string, data []byte) error {
	if err := ctxErr(ctx, "put", bucket, key); err != nil {
		return err
	}
	c.store.Put(bucket, key, data)
	return nil
}

// Capabilities implements Backend.
func (c *InProc) Capabilities() selectengine.Capabilities { return c.caps }

// Profile implements Backend.
func (c *InProc) Profile() Profile { return c.profile }
