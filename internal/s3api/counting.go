package s3api

import (
	"context"
	"sync/atomic"

	"pushdowndb/internal/selectengine"
)

// Counting wraps a Backend and counts the storage requests that actually
// reach it, independent of the engine's virtual-clock accounting. Tests and
// harness figures use it to assert wire-level facts the cost model can only
// claim — e.g. that a warm result cache issues zero Select requests on a
// repeated query. All counters are safe for concurrent use.
type Counting struct {
	Backend
	gets, getRanges, selects, lists, sizes atomic.Int64
}

// NewCounting wraps b.
func NewCounting(b Backend) *Counting { return &Counting{Backend: b} }

// Gets returns the number of whole-object Get calls.
func (c *Counting) Gets() int64 { return c.gets.Load() }

// GetRanges returns the number of ranged/multi-range GET calls.
func (c *Counting) GetRangeCalls() int64 { return c.getRanges.Load() }

// Selects returns the number of Select calls that reached the backend.
func (c *Counting) Selects() int64 { return c.selects.Load() }

// Lists returns the number of List calls.
func (c *Counting) Lists() int64 { return c.lists.Load() }

// Sizes returns the number of Size calls.
func (c *Counting) Sizes() int64 { return c.sizes.Load() }

// Reset zeroes all counters.
func (c *Counting) Reset() {
	c.gets.Store(0)
	c.getRanges.Store(0)
	c.selects.Store(0)
	c.lists.Store(0)
	c.sizes.Store(0)
}

// Get implements Backend.
func (c *Counting) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	c.gets.Add(1)
	return c.Backend.Get(ctx, bucket, key)
}

// GetRange implements Backend.
func (c *Counting) GetRange(ctx context.Context, bucket, key string, first, last int64) ([]byte, error) {
	c.getRanges.Add(1)
	return c.Backend.GetRange(ctx, bucket, key, first, last)
}

// GetRanges implements Backend.
func (c *Counting) GetRanges(ctx context.Context, bucket, key string, ranges [][2]int64) ([][]byte, error) {
	c.getRanges.Add(1)
	return c.Backend.GetRanges(ctx, bucket, key, ranges)
}

// Select implements Backend.
func (c *Counting) Select(ctx context.Context, bucket, key string, req selectengine.Request) (*selectengine.Result, error) {
	c.selects.Add(1)
	return c.Backend.Select(ctx, bucket, key, req)
}

// List implements Backend.
func (c *Counting) List(ctx context.Context, bucket, prefix string) ([]string, error) {
	c.lists.Add(1)
	return c.Backend.List(ctx, bucket, prefix)
}

// Size implements Backend.
func (c *Counting) Size(ctx context.Context, bucket, key string) (int64, error) {
	c.sizes.Add(1)
	return c.Backend.Size(ctx, bucket, key)
}

// Put passes through to the wrapped backend's Putter when it has one
// (loading helper, unmetered like everywhere else).
func (c *Counting) Put(ctx context.Context, bucket, key string, data []byte) error {
	if p, ok := c.Backend.(Putter); ok {
		return p.Put(ctx, bucket, key, data)
	}
	return NewError("put", bucket, key, KindUnsupported, nil)
}
