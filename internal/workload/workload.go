// Package workload generates the synthetic datasets of the paper's
// group-by and format experiments: the uniform-group-size table of Fig. 5
// (20 columns: 10 group columns with 2^1..2^10 distinct groups, 10 float
// value columns), the Zipfian-skewed table of Figs. 6-7 (100 groups per
// group column, sizes following a Zipfian distribution with parameter θ,
// per Gray et al.), and the random float matrices of Fig. 11.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/value"
)

// Zipf draws group indices in [0, n) where group i has probability
// proportional to 1/(i+1)^theta — the Gray et al. generator the paper
// cites. theta = 0 is uniform; larger theta concentrates mass in the first
// groups (θ=1.3 puts ~59% of rows in the 4 largest groups at n=100,
// matching Section VI-C2). Unlike the YCSB approximation, this exact
// CDF-inversion implementation supports theta >= 1.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a generator over n groups with skew theta.
func NewZipf(n int, theta float64, seed int64) *Zipf {
	if n < 1 {
		panic("workload: Zipf needs n >= 1")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Next draws a group index.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// TopMass reports the probability mass of the k most popular groups
// (used to validate skew levels against the paper's "59% in 4 groups").
func (z *Zipf) TopMass(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= len(z.cdf) {
		return 1
	}
	return z.cdf[k-1]
}

// GroupTableSpec describes a synthetic group-by table.
type GroupTableSpec struct {
	Rows int
	// GroupCols gives the number of distinct groups of each group column.
	GroupCols []int
	// ValueCols is the number of float value columns.
	ValueCols int
	// Theta skews group sizes (0 = uniform).
	Theta float64
	Seed  int64
}

// UniformSpec is the Fig. 5 table: 10 group columns with 2..2^10 groups and
// 10 value columns, uniform group sizes.
func UniformSpec(rows int, seed int64) GroupTableSpec {
	gc := make([]int, 10)
	for i := range gc {
		gc[i] = 1 << (i + 1)
	}
	return GroupTableSpec{Rows: rows, GroupCols: gc, ValueCols: 10, Seed: seed}
}

// SkewedSpec is the Fig. 6/7 table: 10 group columns with 100 groups each,
// Zipfian sizes with parameter theta, 10 value columns.
func SkewedSpec(rows int, theta float64, seed int64) GroupTableSpec {
	gc := make([]int, 10)
	for i := range gc {
		gc[i] = 100
	}
	return GroupTableSpec{Rows: rows, GroupCols: gc, ValueCols: 10, Theta: theta, Seed: seed}
}

// Header returns the column names: g1..gN then v1..vM.
func (s GroupTableSpec) Header() []string {
	var h []string
	for i := range s.GroupCols {
		h = append(h, fmt.Sprintf("g%d", i+1))
	}
	for i := 0; i < s.ValueCols; i++ {
		h = append(h, fmt.Sprintf("v%d", i+1))
	}
	return h
}

// Generate produces the table rows.
func (s GroupTableSpec) Generate() [][]string {
	rng := rand.New(rand.NewSource(s.Seed))
	zips := make([]*Zipf, len(s.GroupCols))
	for i, n := range s.GroupCols {
		zips[i] = NewZipf(n, s.Theta, s.Seed+int64(i)*7919)
	}
	rows := make([][]string, s.Rows)
	for r := 0; r < s.Rows; r++ {
		row := make([]string, 0, len(s.GroupCols)+s.ValueCols)
		for i := range s.GroupCols {
			row = append(row, fmt.Sprint(zips[i].Next()))
		}
		for i := 0; i < s.ValueCols; i++ {
			row = append(row, fmt.Sprintf("%.4f", rng.Float64()*100))
		}
		rows[r] = row
	}
	return rows
}

// FloatTable generates the Fig. 11 matrix: cols columns of uniform floats
// rounded to four decimals. The first column ("c1") doubles as the filter
// column, with values uniform in [0, 1) so that "c1 < x" has selectivity x.
func FloatTable(rows, cols int, seed int64) (header []string, data [][]string) {
	rng := rand.New(rand.NewSource(seed))
	header = make([]string, cols)
	for i := range header {
		header[i] = fmt.Sprintf("c%d", i+1)
	}
	data = make([][]string, rows)
	for r := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprintf("%.4f", rng.Float64())
		}
		data[r] = row
	}
	return header, data
}

// FloatSchema returns the colformat schema matching FloatTable.
func FloatSchema(cols int) colformat.Schema {
	s := make(colformat.Schema, cols)
	for i := range s {
		s[i] = colformat.ColumnDef{Name: fmt.Sprintf("c%d", i+1), Kind: value.KindFloat}
	}
	return s
}

// FloatRowsTyped converts FloatTable output into typed rows for the
// columnar writer.
func FloatRowsTyped(data [][]string) [][]value.Value {
	out := make([][]value.Value, len(data))
	for i, r := range data {
		row := make([]value.Value, len(r))
		for j, f := range r {
			v, _ := value.CastFloat(value.Str(f))
			row[j] = v
		}
		out[i] = row
	}
	return out
}
