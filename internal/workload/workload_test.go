package workload

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(10, 0, 1)
	counts := make([]int, 10)
	n := 100_000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for g, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-0.1) > 0.02 {
			t.Errorf("group %d fraction %v, want ~0.1", g, frac)
		}
	}
}

func TestZipfSkewMatchesPaper(t *testing.T) {
	// Section VI-C2: θ=1.3 over 100 groups puts 59% of rows in the 4
	// largest groups.
	z := NewZipf(100, 1.3, 1)
	mass := z.TopMass(4)
	if mass < 0.54 || mass > 0.64 {
		t.Errorf("top-4 mass at θ=1.3 = %v, paper says ~0.59", mass)
	}
	// Empirical check.
	counts := make([]int, 100)
	n := 200_000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	top4 := counts[0] + counts[1] + counts[2] + counts[3]
	frac := float64(top4) / float64(n)
	if math.Abs(frac-mass) > 0.02 {
		t.Errorf("empirical top-4 %v far from analytic %v", frac, mass)
	}
}

func TestZipfMonotoneSkew(t *testing.T) {
	// Higher theta concentrates more mass in the head.
	prev := 0.0
	for _, theta := range []float64{0, 0.6, 0.9, 1.1, 1.3} {
		m := NewZipf(100, theta, 1).TopMass(4)
		if m < prev {
			t.Errorf("top-4 mass not monotone in theta at %v", theta)
		}
		prev = m
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	NewZipf(0, 1, 1)
}

func TestUniformSpecShape(t *testing.T) {
	s := UniformSpec(500, 1)
	h := s.Header()
	if len(h) != 20 || h[0] != "g1" || h[9] != "g10" || h[10] != "v1" {
		t.Fatalf("header = %v", h)
	}
	rows := s.Generate()
	if len(rows) != 500 || len(rows[0]) != 20 {
		t.Fatalf("rows shape = %d x %d", len(rows), len(rows[0]))
	}
	// Column g3 must have at most 2^3 = 8 distinct values.
	distinct := map[string]bool{}
	for _, r := range rows {
		distinct[r[2]] = true
	}
	if len(distinct) > 8 {
		t.Errorf("g3 distinct = %d, want <= 8", len(distinct))
	}
}

func TestSkewedSpecGroupCount(t *testing.T) {
	s := SkewedSpec(5000, 1.1, 2)
	rows := s.Generate()
	distinct := map[string]bool{}
	for _, r := range rows {
		distinct[r[0]] = true
	}
	if len(distinct) > 100 {
		t.Errorf("g1 distinct = %d, want <= 100", len(distinct))
	}
	// Head group should dominate under skew.
	counts := map[string]int{}
	for _, r := range rows {
		counts[r[0]]++
	}
	if counts["0"] < counts["99"] {
		t.Error("group 0 should be more popular than group 99 under skew")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := SkewedSpec(100, 1.1, 9).Generate()
	b := SkewedSpec(100, 1.1, 9).Generate()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestFloatTable(t *testing.T) {
	h, rows := FloatTable(100, 10, 3)
	if len(h) != 10 || h[0] != "c1" {
		t.Fatalf("header = %v", h)
	}
	for _, r := range rows {
		var v float64
		fmt.Sscanf(r[0], "%f", &v)
		if v < 0 || v >= 1 {
			t.Fatalf("c1 value %v out of [0,1)", v)
		}
	}
	schema := FloatSchema(10)
	if len(schema) != 10 || schema[9].Name != "c10" {
		t.Fatalf("schema = %v", schema)
	}
	typed := FloatRowsTyped(rows)
	if len(typed) != 100 || typed[0][0].Kind().String() != "FLOAT" {
		t.Fatal("typed conversion broken")
	}
}

// Property: Zipf output is always a valid group index.
func TestQuickZipfRange(t *testing.T) {
	f := func(n uint8, theta uint8, seed int64) bool {
		groups := int(n%50) + 1
		z := NewZipf(groups, float64(theta%20)/10, seed)
		for i := 0; i < 50; i++ {
			g := z.Next()
			if g < 0 || g >= groups {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
