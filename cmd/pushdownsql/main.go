// Command pushdownsql loads CSV files into a storage backend and runs SQL
// against them through PushdownDB, printing the result plus the virtual
// runtime and the dollar cost the query would have had on AWS.
//
//	pushdownsql -table customer=./customer.csv \
//	            -q "SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY c_mktsegment ORDER BY n DESC"
//
// The -backend flag selects where table bytes live: the default "inproc"
// backend simulates in-region S3; "localfs" lays objects out on disk under
// -fsroot and advertises a local-disk cost profile, which the join planner
// prices differently (plain loads are free and fast there, so pushdown
// strategies win less often).
//
// Multi-table join queries go through the cost-based planner, which picks
// a Section-V join strategy (baseline vs Bloom join) per join; pass
// -explain to see the plan tree, strategy choice and cost estimates
// without running the query:
//
//	pushdownsql -table customer=./customer.csv -table orders=./orders.csv -explain \
//	            -q "SELECT SUM(o.o_totalprice) FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey WHERE c.c_acctbal <= -950"
//
// Secondary indexes: -index col@table (or a CREATE INDEX statement in -q)
// builds sorted per-partition index objects, after which selective
// predicates on that column can plan as IndexScans — index probe plus
// batched multi-range GETs instead of a full scan; -explain shows the
// three-way access-path estimate:
//
//	pushdownsql -table orders=./orders.csv -index o_custkey@orders -explain \
//	            -q "SELECT o_totalprice FROM orders WHERE o_custkey = 41"
//
// EXPLAIN and EXPLAIN ANALYZE also work as SQL statements in -q: plain
// EXPLAIN prints the estimates without executing; ANALYZE runs the query
// under a trace and annotates every plan step with the actual rows, bytes
// and cost next to the estimates that picked it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/localfs"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

type tableFlags []string

func (t *tableFlags) String() string     { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		tables  tableFlags
		indexes tableFlags
		query   = flag.String("q", "", "SQL statement: a SELECT (single-table, or multi-table with JOIN ... ON / comma joins), CREATE INDEX name ON t (col), or DROP INDEX")
		explain = flag.Bool("explain", false, "print the plan (join strategy choices and cost estimates) instead of executing")
		parts   = flag.Int("parts", 4, "partitions per table")
		backend = flag.String("backend", "inproc", "storage backend: inproc (simulated in-region S3) or localfs (objects on disk under -fsroot)")
		fsroot  = flag.String("fsroot", "", "localfs backend root directory (default: a temp dir)")
		sim     = flag.Float64("sim", 1, "simulate the data at N× its actual size for the virtual clock, cost model and join planner")
		workers = flag.Int("workers", 1, "worker goroutines for server-side operators (capped at the cost model's cores); the virtual clock and the join planner both price row work at this parallelism")
		cacheMB = flag.Int("cache-mb", 0, "select-result cache budget in MiB (0 = off): repeated scans are served from the compute tier with zero storage requests, and the planner prices resident scans as cache hits")
		vector  = flag.Bool("vectorized", true, "run server-side operators on the vectorized columnar path; false pins the row-at-a-time reference (results are byte-identical either way)")
	)
	flag.Var(&tables, "table", "name=path.csv (repeatable)")
	flag.Var(&indexes, "index", "col@table (repeatable): build a secondary index on the loaded table before planning, so selective predicates on that column can run as IndexScans")
	flag.Parse()
	if *query == "" || len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pushdownsql -table name=path.csv [-table ...] -q SQL")
		os.Exit(2)
	}
	if *sim <= 0 {
		fatal(fmt.Errorf("-sim must be > 0, got %g", *sim))
	}
	if *workers < 1 {
		fatal(fmt.Errorf("-workers must be >= 1, got %d", *workers))
	}

	// Pick the backend and its loading path.
	ctx := context.Background()
	var (
		be     s3api.Backend
		putter s3api.Putter
	)
	switch *backend {
	case "inproc":
		inproc := s3api.NewInProc(store.New())
		be, putter = inproc, inproc
	case "localfs":
		root := *fsroot
		if root == "" {
			dir, err := os.MkdirTemp("", "pushdowndb-localfs-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
			root = dir
		}
		fs := localfs.New(root)
		be, putter = fs, fs
		fmt.Fprintf(os.Stderr, "localfs backend rooted at %s\n", root)
	default:
		fatal(fmt.Errorf("unknown -backend %q (want inproc or localfs)", *backend))
	}

	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -table %q, want name=path", spec))
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		header, rows, err := csvx.Decode(data, true)
		if err != nil {
			fatal(fmt.Errorf("parsing %s: %w", path, err))
		}
		if err := engine.PartitionTableTo(ctx, putter, "local", name, header, rows, *parts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: %d rows, %d partitions\n", name, len(rows), *parts)
	}

	opts := []engine.Option{
		engine.WithBackend(*backend, be),
		engine.WithWorkers(*workers),
		engine.WithVectorized(*vector),
	}
	if *sim != 1 {
		opts = append(opts, engine.WithScale(cloudsim.Scale{DataRatio: *sim, PartRatio: 1}))
	}
	if *cacheMB > 0 {
		opts = append(opts, engine.WithResultCache(int64(*cacheMB)<<20))
	}
	db, err := engine.Open("local", opts...)
	if err != nil {
		fatal(err)
	}
	for _, spec := range indexes {
		col, table, ok := strings.Cut(spec, "@")
		if !ok {
			fatal(fmt.Errorf("bad -index %q, want col@table", spec))
		}
		if err := db.CreateIndex(ctx, table, col); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "built index on %s(%s)\n", table, col)
	}
	if *explain {
		plan, err := db.Explain(*query)
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}
	rel, e, err := db.ExecStatement(ctx, *query)
	if err != nil {
		fatal(err)
	}
	if rel == nil {
		// DDL (CREATE INDEX / DROP INDEX): no relation, no metered cost.
		fmt.Println("ok")
		return
	}
	if len(rel.Cols) == 1 && rel.Cols[0] == "plan" {
		// EXPLAIN [ANALYZE]: the relation carries the render line by line;
		// print it raw, not as a table. ANALYZE already embeds its own
		// runtime/cost totals (plain EXPLAIN never executed, e is nil).
		for _, row := range rel.Rows {
			fmt.Println(row[0].AsString())
		}
		return
	}
	fmt.Print(rel)
	fmt.Printf("\nvirtual runtime: %.3fs   cost: %s\n", e.RuntimeSeconds(), e.Cost())
	if hits, bytes := e.Metrics.CacheTotals(); hits > 0 {
		fmt.Printf("result cache: %d scan(s) served locally (%.1f MB not re-bought from storage)\n",
			hits, float64(bytes)/1e6)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pushdownsql:", err)
	os.Exit(1)
}
