// Command pushdownsql loads CSV files into the simulated S3 store and runs
// SQL against them through PushdownDB, printing the result plus the
// virtual runtime and the dollar cost the query would have had on AWS.
//
//	pushdownsql -table customer=./customer.csv \
//	            -q "SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY c_mktsegment ORDER BY n DESC"
//
// Multi-table join queries go through the cost-based planner, which picks
// a Section-V join strategy (baseline vs Bloom join) per join; pass
// -explain to see the plan tree, strategy choice and cost estimates
// without running the query:
//
//	pushdownsql -table customer=./customer.csv -table orders=./orders.csv -explain \
//	            -q "SELECT SUM(o.o_totalprice) FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey WHERE c.c_acctbal <= -950"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

type tableFlags []string

func (t *tableFlags) String() string     { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		tables  tableFlags
		query   = flag.String("q", "", "SQL query (single-table, or multi-table with JOIN ... ON / comma joins)")
		explain = flag.Bool("explain", false, "print the plan (join strategy choices and cost estimates) instead of executing")
		parts   = flag.Int("parts", 4, "partitions per table")
		sim     = flag.Float64("sim", 1, "simulate the data at N× its actual size for the virtual clock, cost model and join planner")
		workers = flag.Int("workers", 1, "worker goroutines for server-side operators (capped at the cost model's cores); the virtual clock and the join planner both price row work at this parallelism")
	)
	flag.Var(&tables, "table", "name=path.csv (repeatable)")
	flag.Parse()
	if *query == "" || len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pushdownsql -table name=path.csv [-table ...] -q SQL")
		os.Exit(2)
	}
	if *sim <= 0 {
		fatal(fmt.Errorf("-sim must be > 0, got %g", *sim))
	}

	st := store.New()
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -table %q, want name=path", spec))
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		header, rows, err := csvx.Decode(data, true)
		if err != nil {
			fatal(fmt.Errorf("parsing %s: %w", path, err))
		}
		if err := engine.PartitionTable(st, "local", name, header, rows, *parts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: %d rows, %d partitions\n", name, len(rows), *parts)
	}

	db := engine.Open(s3api.NewInProc(st), "local")
	if *sim != 1 {
		db.Sim = cloudsim.Scale{DataRatio: *sim, PartRatio: 1}
	}
	if *workers < 1 {
		fatal(fmt.Errorf("-workers must be >= 1, got %d", *workers))
	}
	db.Cfg.Workers = *workers
	if *explain {
		plan, err := db.Explain(*query)
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}
	rel, e, err := db.Query(*query)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rel)
	fmt.Printf("\nvirtual runtime: %.3fs   cost: %s\n", e.RuntimeSeconds(), e.Cost())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pushdownsql:", err)
	os.Exit(1)
}
