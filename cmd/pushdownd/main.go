// Command pushdownd serves PushdownDB over HTTP: one long-lived engine —
// with its planner statistics, secondary-index memos and select-result
// cache — shared by every client, behind admission control, per-tenant
// concurrency lanes and simulated-dollar quotas.
//
//	pushdownd -demo                          # tiny TPC-H dataset, in-proc S3
//	pushdownd -table orders=./orders.csv     # your own CSVs
//	pushdownd -backend localfs -fsroot /data -bucket local
//
// Endpoints:
//
//	POST /query    {"sql": "...", "tenant": "alice"} → rows + virtual
//	               runtime + simulated dollar cost, or a structured error
//	               ({"error":{"kind":"over_quota",...}})
//	GET  /stats    shared result-cache stats and per-tenant cost totals
//	GET  /healthz  liveness (reports "draining" during shutdown)
//	GET  /metrics  Prometheus text exposition (disable with -metrics=false)
//	GET  /debug/trace/<request-id>  a completed query's span tree as JSON
//	               (?format=chrome for chrome://tracing); bare path lists
//	               the retained ids
//	GET  /debug/pprof/  net/http/pprof, only with -pprof
//
// SIGINT/SIGTERM starts a graceful drain: new queries are refused with
// kind "shutting_down" while in-flight queries run to completion.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pushdowndb/internal/csvx"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/localfs"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/scanshare"
	"pushdowndb/internal/server"
	"pushdowndb/internal/store"
	"pushdowndb/internal/tpch"
)

type tableFlags []string

func (t *tableFlags) String() string     { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		tables      tableFlags
		addr        = flag.String("addr", "127.0.0.1:8123", "listen address")
		demo        = flag.Bool("demo", false, "load a small TPC-H dataset (in-proc simulated S3) instead of -table files")
		demoSF      = flag.Float64("demo-sf", 0.01, "TPC-H scale factor for -demo")
		backend     = flag.String("backend", "inproc", "storage backend: inproc (simulated in-region S3) or localfs")
		fsroot      = flag.String("fsroot", "", "localfs root directory; may already hold objects from a previous run")
		bucket      = flag.String("bucket", "local", "bucket queries read from")
		parts       = flag.Int("parts", 4, "partitions per loaded table")
		cacheMB     = flag.Int("cache-mb", 64, "shared select-result cache budget in MiB (0 = off)")
		shareWindow = flag.Duration("share-window", 2*time.Millisecond, "scan-sharing batch window: concurrent compatible scans on one object merge into one S3 Select (0 = sharing off, negative = coalesce identical requests only)")
		shareBatch  = flag.Int("share-batch", 16, "max queries merged into one shared scan pass")
		maxClients  = flag.Int("max-clients", 32, "queries executing concurrently before arrivals queue")
		queueDepth  = flag.Int("queue", 0, "bounded admission queue depth (0 = 4x max-clients); overflow is refused with kind \"overloaded\"")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request wall-clock budget; overruns cancel the engine mid-flight")
		tenantLanes = flag.Int("tenant-lanes", 0, "max concurrent queries per tenant (0 = unlimited)")
		tenantUSD   = flag.Float64("tenant-budget", 0, "simulated-dollar budget per tenant (0 = unmetered); overruns are refused with kind \"over_quota\"")
		tenantRate  = flag.Int("tenant-rate", 0, "max queries per tenant per rate window (0 = unlimited); overruns are refused with kind \"rate_limited\"")
		tenantRateW = flag.Duration("tenant-rate-window", time.Second, "rolling window -tenant-rate counts over")
		auditPath   = flag.String("audit", "", "append a JSON line per query/rejection here (\"-\" = stderr)")
		metricsOn   = flag.Bool("metrics", true, "serve Prometheus metrics at GET /metrics")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		slowQuery   = flag.Duration("slow-query", 0, "log the full span tree of queries over this wall-clock threshold to the audit stream (0 = off)")
		traceRetain = flag.Int("trace-retain", 64, "completed query traces kept for GET /debug/trace/<id> (negative = tracing off)")
	)
	flag.Var(&tables, "table", "name=path.csv (repeatable)")
	flag.Parse()

	ctx := context.Background()
	var (
		be     s3api.Backend
		putter s3api.Putter
	)
	switch *backend {
	case "inproc":
		inproc := s3api.NewInProc(store.New())
		be, putter = inproc, inproc
	case "localfs":
		root := *fsroot
		if root == "" {
			dir, err := os.MkdirTemp("", "pushdownd-localfs-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
			root = dir
		}
		fs := localfs.New(root)
		be, putter = fs, fs
		fmt.Fprintf(os.Stderr, "pushdownd: localfs backend rooted at %s\n", root)
	default:
		fatal(fmt.Errorf("unknown -backend %q (want inproc or localfs)", *backend))
	}

	if *demo {
		if *backend != "inproc" {
			fatal(fmt.Errorf("-demo needs the inproc backend"))
		}
		*bucket = "tpch"
		st := store.New()
		if _, err := tpch.LoadWithIndexes(ctx, st, tpch.Dataset{
			SF: *demoSF, Seed: 42, Bucket: *bucket, Partitions: *parts,
		}); err != nil {
			fatal(err)
		}
		inproc := s3api.NewInProc(st)
		be, putter = inproc, inproc
		fmt.Fprintf(os.Stderr, "pushdownd: demo TPC-H dataset loaded at SF %g\n", *demoSF)
	}
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -table %q, want name=path", spec))
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		header, rows, err := csvx.Decode(data, true)
		if err != nil {
			fatal(fmt.Errorf("parsing %s: %w", path, err))
		}
		if err := engine.PartitionTableTo(ctx, putter, *bucket, name, header, rows, *parts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pushdownd: loaded %s: %d rows, %d partitions\n", name, len(rows), *parts)
	}

	opts := []engine.Option{engine.WithBackend(*backend, be)}
	if *cacheMB > 0 {
		opts = append(opts, engine.WithResultCache(int64(*cacheMB)<<20))
	}
	if *shareWindow != 0 {
		opts = append(opts, engine.WithScanSharing(scanshare.Config{
			Window: *shareWindow, MaxBatch: *shareBatch,
		}))
	}
	db, err := engine.Open(*bucket, opts...)
	if err != nil {
		fatal(err)
	}

	var audit io.Writer
	switch *auditPath {
	case "":
	case "-":
		audit = os.Stderr
	default:
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		audit = f
	}

	srv := server.New(db, server.Config{
		MaxClients:        *maxClients,
		QueueDepth:        *queueDepth,
		RequestTimeout:    *timeout,
		TenantConcurrency: *tenantLanes,
		TenantBudgetUSD:   *tenantUSD,
		TenantRateLimit:   *tenantRate,
		TenantRateWindow:  *tenantRateW,
		AuditLog:          audit,
		TraceRetain:       *traceRetain,
		SlowQuery:         *slowQuery,
		EnablePprof:       *pprofOn,
		DisableMetrics:    !*metricsOn,
	})

	sigCtx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Fprintf(os.Stderr, "pushdownd: serving bucket %q on http://%s\n", *bucket, *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-sigCtx.Done():
		fmt.Fprintln(os.Stderr, "pushdownd: draining...")
		shCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		fmt.Fprintln(os.Stderr, "pushdownd: drained, bye")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pushdownd:", err)
	os.Exit(1)
}
