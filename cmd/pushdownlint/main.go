// Command pushdownlint runs the repo's analyzer suite (internal/lint) over
// the module and exits non-zero on any diagnostic.
//
// Usage:
//
//	go run ./cmd/pushdownlint ./...
//	go run ./cmd/pushdownlint -list
//	go run ./cmd/pushdownlint internal/engine internal/harness
//
// Suppress a finding with a reasoned directive on (or directly above) the
// flagged line:
//
//	//lint:ignore <analyzer> <why the invariant may be broken here>
//
// See docs/ARCHITECTURE.md "Static analysis & invariants".
package main

import (
	"flag"
	"fmt"
	"os"

	"pushdowndb/internal/lint"
	"pushdowndb/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their docs, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pushdownlint [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := load.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pushdownlint:", err)
	os.Exit(2)
}
