// Command tpchgen generates TPC-H tables as CSV files (a dbgen stand-in).
//
//	tpchgen -sf 0.01 -dir ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pushdowndb/internal/csvx"
	"pushdowndb/internal/tpch"
)

func main() {
	var (
		sf   = flag.Float64("sf", 0.01, "TPC-H scale factor")
		seed = flag.Int64("seed", 42, "generator seed")
		dir  = flag.String("dir", ".", "output directory")
	)
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	orders := tpch.GenOrders(*sf, *seed)
	tables := []struct {
		name   string
		header []string
		rows   [][]string
	}{
		{"customer", tpch.CustomerHeader, tpch.GenCustomers(*sf, *seed)},
		{"orders", tpch.OrdersHeader, orders},
		{"lineitem", tpch.LineitemHeader, tpch.GenLineitems(*sf, *seed, orders)},
		{"part", tpch.PartHeader, tpch.GenParts(*sf, *seed)},
		{"supplier", tpch.SupplierHeader, tpch.GenSuppliers(*sf, *seed)},
		{"nation", tpch.NationHeader, tpch.GenNations()},
		{"region", tpch.RegionHeader, tpch.GenRegions()},
	}
	for _, t := range tables {
		path := filepath.Join(*dir, t.name+".csv")
		data := csvx.Encode(t.header, t.rows)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s %8d rows  %10d bytes  -> %s\n", t.name, len(t.rows), len(data), path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpchgen:", err)
	os.Exit(1)
}
