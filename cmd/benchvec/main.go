// Command benchvec times the vectorized local operators against the
// row-at-a-time reference over a materialized TPC-H lineitem/part and
// writes the comparison to a JSON report (BENCH_vec.json by default).
//
//	benchvec                      # SF 0.01, write BENCH_vec.json
//	benchvec -sf 0.002 -check     # CI smoke: exit non-zero if vec is slower
//
// With -check the command verifies both paths return identical row counts
// and exits 1 if any case's vectorized run is slower than its row run —
// the regression guard CI runs at tiny scale on every push. The same run
// measures tracing overhead (the fixture query with and without an
// obs.Trace in context) and fails -check if the traced run exceeds the
// untraced by more than 50%.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"pushdowndb/internal/harness"
)

// CaseReport is one operator's measurement in the JSON report.
type CaseReport struct {
	RowNsPerOp int64   `json:"row_ns_per_op"`
	VecNsPerOp int64   `json:"vec_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// TraceReport is the tracing-overhead measurement: the same query end to
// end with and without an obs.Trace in context.
type TraceReport struct {
	OffNsPerOp   int64   `json:"off_ns_per_op"`
	OnNsPerOp    int64   `json:"on_ns_per_op"`
	OverheadFrac float64 `json:"overhead_frac"`
}

// Report is the BENCH_vec.json layout.
type Report struct {
	SF    float64               `json:"sf"`
	Cases map[string]CaseReport `json:"cases"`
	Trace TraceReport           `json:"trace"`
}

func main() {
	var (
		sf    = flag.Float64("sf", 0.01, "TPC-H scale factor for the fixture")
		out   = flag.String("o", "BENCH_vec.json", "report path (empty = stdout only)")
		check = flag.Bool("check", false, "exit non-zero if any vectorized case is slower than its row twin")
	)
	flag.Parse()

	fixture, err := harness.NewVecBenchFixture(context.Background(), *sf)
	if err != nil {
		fatal(err)
	}
	if err := harness.VecBenchVerify(fixture); err != nil {
		fatal(err)
	}

	report := Report{SF: *sf, Cases: map[string]CaseReport{}}
	slower := false
	for _, c := range harness.VecBenchCases() {
		time := func(vectorized bool) int64 {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := c.Run(fixture, vectorized); err != nil {
						b.Fatal(err)
					}
				}
			})
			return r.NsPerOp()
		}
		row, vec := time(false), time(true)
		cr := CaseReport{RowNsPerOp: row, VecNsPerOp: vec, Speedup: float64(row) / float64(vec)}
		report.Cases[c.Name] = cr
		fmt.Printf("%-8s row %12d ns/op   vec %12d ns/op   %.2fx\n", c.Name, row, vec, cr.Speedup)
		// 10% tolerance: the CI smoke runs at tiny scale where per-op
		// times are microseconds and scheduler noise is real.
		if float64(vec) > float64(row)*1.10 {
			slower = true
		}
	}

	// Tracing overhead: the full query with and without a trace in
	// context. The gate is generous (50%) because the smoke runs a
	// millisecond-scale query where constant costs loom large; the point
	// is to catch span bookkeeping becoming a per-row cost, which shows
	// up as a multiple, not a margin.
	tf, err := harness.NewTraceBenchFixture(context.Background(), *sf)
	if err != nil {
		fatal(err)
	}
	if err := tf.TraceBenchVerify(context.Background()); err != nil {
		fatal(err)
	}
	timeTrace := func(traced bool) int64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tf.Run(context.Background(), traced); err != nil {
					b.Fatal(err)
				}
			}
		})
		return r.NsPerOp()
	}
	off, on := timeTrace(false), timeTrace(true)
	report.Trace = TraceReport{
		OffNsPerOp:   off,
		OnNsPerOp:    on,
		OverheadFrac: float64(on)/float64(off) - 1,
	}
	fmt.Printf("%-8s off %12d ns/op   on  %12d ns/op   %+.1f%%\n",
		"trace", off, on, report.Trace.OverheadFrac*100)
	tracingSlow := float64(on) > float64(off)*1.50

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(data)
	}

	if *check && slower {
		fatal(fmt.Errorf("vectorized path slower than row path (see report above)"))
	}
	if *check && tracingSlow {
		fatal(fmt.Errorf("tracing overhead above 50%% (see report above)"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchvec:", err)
	os.Exit(1)
}
