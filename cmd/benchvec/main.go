// Command benchvec times the vectorized local operators against the
// row-at-a-time reference over a materialized TPC-H lineitem/part and
// writes the comparison to a JSON report (BENCH_vec.json by default).
//
//	benchvec                      # SF 0.01, write BENCH_vec.json
//	benchvec -sf 0.002 -check     # CI smoke: exit non-zero if vec is slower
//
// With -check the command verifies both paths return identical row counts
// and exits 1 if any case's vectorized run is slower than its row run —
// the regression guard CI runs at tiny scale on every push.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"pushdowndb/internal/harness"
)

// CaseReport is one operator's measurement in the JSON report.
type CaseReport struct {
	RowNsPerOp int64   `json:"row_ns_per_op"`
	VecNsPerOp int64   `json:"vec_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// Report is the BENCH_vec.json layout.
type Report struct {
	SF    float64               `json:"sf"`
	Cases map[string]CaseReport `json:"cases"`
}

func main() {
	var (
		sf    = flag.Float64("sf", 0.01, "TPC-H scale factor for the fixture")
		out   = flag.String("o", "BENCH_vec.json", "report path (empty = stdout only)")
		check = flag.Bool("check", false, "exit non-zero if any vectorized case is slower than its row twin")
	)
	flag.Parse()

	fixture, err := harness.NewVecBenchFixture(context.Background(), *sf)
	if err != nil {
		fatal(err)
	}
	if err := harness.VecBenchVerify(fixture); err != nil {
		fatal(err)
	}

	report := Report{SF: *sf, Cases: map[string]CaseReport{}}
	slower := false
	for _, c := range harness.VecBenchCases() {
		time := func(vectorized bool) int64 {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := c.Run(fixture, vectorized); err != nil {
						b.Fatal(err)
					}
				}
			})
			return r.NsPerOp()
		}
		row, vec := time(false), time(true)
		cr := CaseReport{RowNsPerOp: row, VecNsPerOp: vec, Speedup: float64(row) / float64(vec)}
		report.Cases[c.Name] = cr
		fmt.Printf("%-8s row %12d ns/op   vec %12d ns/op   %.2fx\n", c.Name, row, vec, cr.Speedup)
		// 10% tolerance: the CI smoke runs at tiny scale where per-op
		// times are microseconds and scheduler noise is real.
		if float64(vec) > float64(row)*1.10 {
			slower = true
		}
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(data)
	}

	if *check && slower {
		fatal(fmt.Errorf("vectorized path slower than row path (see report above)"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchvec:", err)
	os.Exit(1)
}
