// Command benchfig regenerates the paper's figures and prints them as
// tables.
//
//	benchfig                 # all main figures at the default scale
//	benchfig -fig Fig5       # one figure
//	benchfig -ablations      # the Section-X extension ablations
//	benchfig -scale small    # faster, smaller datasets
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"pushdowndb/internal/harness"
)

func main() {
	var (
		scaleName = flag.String("scale", "default", "dataset scale: small or default")
		fig       = flag.String("fig", "", "single figure to run (Fig1..Fig11); empty = all")
		ablations = flag.Bool("ablations", false, "run the Section-X extension ablations instead")
	)
	flag.Parse()

	// Ctrl-C cancels the run between (and, through the engine, inside)
	// figure sweeps instead of leaving a half-printed table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scale := harness.DefaultScale()
	if *scaleName == "small" {
		scale = harness.SmallScale()
	}
	env := harness.NewEnv(scale)

	runs := map[string]func(context.Context, *harness.Env) (*harness.Result, error){
		"Fig1": harness.RunFig1, "Fig2": harness.RunFig2, "Fig3": harness.RunFig3,
		"Fig4": harness.RunFig4, "Fig5": harness.RunFig5, "Fig6": harness.RunFig6,
		"Fig7": harness.RunFig7, "Fig8": harness.RunFig8, "Fig9": harness.RunFig9,
		"Fig10": harness.RunFig10, "Fig11": harness.RunFig11,
		"Planner": harness.RunPlanner, "Parallel": harness.RunParallel,
		"Backends": harness.RunBackends, "Cache": harness.RunCache,
		"Index": harness.RunIndex, "Serve": harness.RunServe,
		"Shared": harness.RunShared,
	}

	switch {
	case *ablations:
		results, err := harness.AblationFigures(ctx, env)
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			fmt.Println(r)
		}
	case *fig != "":
		run, ok := runs[*fig]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q (Fig1..Fig11, Planner, Parallel, Backends, Cache, Index, Serve, Shared)", *fig))
		}
		r, err := run(ctx, env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	default:
		results, err := harness.AllFigures(ctx, env)
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			fmt.Println(r)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfig:", err)
	os.Exit(1)
}
