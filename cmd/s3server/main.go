// Command s3server serves the simulated S3 service (ranged GETs, the
// multi-range extension, and S3 Select) over HTTP. CSV files in -dir are
// loaded as single-partition tables named after the file.
//
//	s3server -addr :9000 -bucket tpch -dir ./data
//
// Then, for example:
//
//	curl -s -X POST 'http://localhost:9000/tpch/customer/part0000.csv?select' \
//	  -d '{"sql":"SELECT c_name FROM S3Object WHERE c_acctbal <= -950","has_header":true}'
//
// The server is self-describing: GET /?describe returns the select
// capabilities it executes (enable the Section-X extensions with
// -allow-groupby / -allow-bloom) and the cost profile it advertises to
// planners. Failed operations carry a structured error kind in the
// X-Pushdowndb-Error-Kind header (not_found, invalid_range, bad_request,
// unsupported, internal), which the s3http client folds back into
// *s3api.Error values.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3http"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":9000", "listen address")
		bucket      = flag.String("bucket", "data", "bucket name for loaded files")
		dir         = flag.String("dir", "", "directory of CSV files to load as tables")
		state       = flag.String("state", "", "store state directory: loaded at startup if present, saved after -dir ingestion")
		parts       = flag.Int("parts", 4, "partitions per loaded table")
		allowGB     = flag.Bool("allow-groupby", false, "execute and advertise the Suggestion-4 partial GROUP BY extension")
		allowBloom  = flag.Bool("allow-bloom", false, "execute and advertise the Suggestion-3 BLOOM_CONTAINS extension")
		crossRegion = flag.Bool("cross-region", false, "advertise the cross-region S3 cost profile instead of in-region")
	)
	flag.Parse()
	ctx := context.Background()

	st := store.New()
	if *state != "" {
		if loaded, err := store.LoadDir(*state); err == nil {
			st = loaded
			fmt.Printf("restored store state from %s\n", *state)
		}
	}
	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fatal(err)
		}
		for _, ent := range entries {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".csv") {
				continue
			}
			path := filepath.Join(*dir, ent.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			header, rows, err := csvx.Decode(data, true)
			if err != nil {
				fatal(fmt.Errorf("parsing %s: %w", path, err))
			}
			table := strings.TrimSuffix(ent.Name(), ".csv")
			if err := engine.PartitionTable(ctx, st, *bucket, table, header, rows, *parts); err != nil {
				fatal(err)
			}
			fmt.Printf("loaded %s/%s (%d rows, %d partitions)\n", *bucket, table, len(rows), *parts)
		}
	}

	if *state != "" {
		if err := st.SaveDir(*state); err != nil {
			fatal(err)
		}
		fmt.Printf("saved store state to %s\n", *state)
	}

	profile := cloudsim.S3Profile()
	if *crossRegion {
		profile = cloudsim.CrossRegionS3Profile()
	}
	srv := s3http.NewServer(st,
		s3http.WithCapabilities(selectengine.Capabilities{
			AllowGroupBy:       *allowGB,
			AllowBloomContains: *allowBloom,
		}),
		s3http.WithProfile(profile))
	fmt.Printf("simulated S3 listening on %s (profile %s; see GET /?describe)\n", *addr, profile.Name)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3server:", err)
	os.Exit(1)
}
