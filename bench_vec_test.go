// Vectorized-vs-row local operator benchmarks (see docs/ARCHITECTURE.md,
// "Vectorized execution"): each benchmark runs one local operator over a
// materialized TPC-H lineitem/part at SF 0.01 through both execution
// paths. cmd/benchvec times the same harness cases outside the testing
// framework and writes BENCH_vec.json.
//
//	go test -bench=BenchmarkVec -benchtime=10x
package pushdowndb_test

import (
	"context"
	"sync"
	"testing"

	"pushdowndb/internal/harness"
)

const vecBenchSF = 0.01

var (
	vecFixtureOnce sync.Once
	vecFixture     *harness.VecBenchFixture
	vecFixtureErr  error
)

func vecBenchFixture(b *testing.B) *harness.VecBenchFixture {
	b.Helper()
	vecFixtureOnce.Do(func() {
		vecFixture, vecFixtureErr = harness.NewVecBenchFixture(context.Background(), vecBenchSF)
	})
	if vecFixtureErr != nil {
		b.Fatal(vecFixtureErr)
	}
	return vecFixture
}

func benchVecCase(b *testing.B, name string) {
	f := vecBenchFixture(b)
	for _, c := range harness.VecBenchCases() {
		if c.Name != name {
			continue
		}
		for _, path := range []struct {
			label      string
			vectorized bool
		}{{"row", false}, {"vec", true}} {
			b.Run(path.label, func(b *testing.B) {
				rows := 0
				for i := 0; i < b.N; i++ {
					n, err := c.Run(f, path.vectorized)
					if err != nil {
						b.Fatal(err)
					}
					rows = n
				}
				b.ReportMetric(float64(rows), "out_rows")
			})
		}
		return
	}
	b.Fatalf("no vec bench case %q", name)
}

func BenchmarkVecFilter(b *testing.B)  { benchVecCase(b, "filter") }
func BenchmarkVecGroupBy(b *testing.B) { benchVecCase(b, "groupby") }
func BenchmarkVecJoin(b *testing.B)    { benchVecCase(b, "join") }

// BenchmarkTraceOverhead pins the cost of query tracing: the same pushed
// filter + aggregate with and without an obs.Trace in context. The "off"
// path is what every untraced query pays (one nil context lookup per
// span site); cmd/benchvec -check gates the on/off ratio so span
// bookkeeping can't quietly grow into query latency.
func BenchmarkTraceOverhead(b *testing.B) {
	f, err := harness.NewTraceBenchFixture(context.Background(), vecBenchSF)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		label  string
		traced bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.Run(context.Background(), mode.traced); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
