module pushdowndb

go 1.22
