// Benchmarks regenerating every figure and table of the paper's evaluation
// (one benchmark per figure; see DESIGN.md §4 for the index). Each
// iteration executes the figure's full parameter sweep on the engine; the
// reported custom metrics are the paper-scale virtual results, so the
// benchmark output doubles as the reproduction record:
//
//	go test -bench=. -benchmem
//
// Wall-clock ns/op measures the simulator itself; the paper-comparable
// numbers are the *_s and *_usd metrics.
package pushdowndb_test

import (
	"context"
	"sync"
	"testing"

	"pushdowndb/internal/harness"
)

var (
	envOnce sync.Once
	envInst *harness.Env
)

func benchEnv(b *testing.B) *harness.Env {
	b.Helper()
	envOnce.Do(func() {
		envInst = harness.NewEnv(harness.DefaultScale())
	})
	return envInst
}

// benchFigure runs one figure per iteration and reports headline metrics
// extracted by pick.
func benchFigure(b *testing.B, run func(context.Context, *harness.Env) (*harness.Result, error),
	pick func(*harness.Result) map[string]float64) {
	env := benchEnv(b)
	// Warm the dataset caches outside the timer.
	if _, err := run(context.Background(), env); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *harness.Result
	for i := 0; i < b.N; i++ {
		r, err := run(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	if pick != nil {
		for k, v := range pick(last) {
			b.ReportMetric(v, k)
		}
	}
}

func mustPoint(b *testing.B, r *harness.Result, series, x string) harness.Point {
	b.Helper()
	p, ok := r.Get(series, x)
	if !ok {
		b.Fatalf("missing point (%s, %s) in %s", series, x, r.ID)
	}
	return p
}

func BenchmarkFig1Filter(b *testing.B) {
	benchFigure(b, harness.RunFig1, func(r *harness.Result) map[string]float64 {
		var server, s3side harness.Point
		for _, x := range []string{"1e-04"} {
			server = mustPoint(b, r, "Server-Side Filter", x)
			s3side = mustPoint(b, r, "S3-Side Filter", x)
		}
		return map[string]float64{
			"server_s":  server.RuntimeSec,
			"s3side_s":  s3side.RuntimeSec,
			"speedup_x": server.RuntimeSec / s3side.RuntimeSec,
		}
	})
}

func BenchmarkFig2JoinCustomerSel(b *testing.B) {
	benchFigure(b, harness.RunFig2, func(r *harness.Result) map[string]float64 {
		base := mustPoint(b, r, "Baseline Join", "-950")
		bloom := mustPoint(b, r, "Bloom Join", "-950")
		return map[string]float64{
			"baseline_s": base.RuntimeSec,
			"bloom_s":    bloom.RuntimeSec,
			"speedup_x":  base.RuntimeSec / bloom.RuntimeSec,
		}
	})
}

func BenchmarkFig3JoinOrdersSel(b *testing.B) {
	benchFigure(b, harness.RunFig3, func(r *harness.Result) map[string]float64 {
		filt := mustPoint(b, r, "Filtered Join", "1992-03-01")
		bloom := mustPoint(b, r, "Bloom Join", "None")
		return map[string]float64{"filtered_tight_s": filt.RuntimeSec, "bloom_none_s": bloom.RuntimeSec}
	})
}

func BenchmarkFig4BloomFPR(b *testing.B) {
	benchFigure(b, harness.RunFig4, func(r *harness.Result) map[string]float64 {
		return map[string]float64{
			"fpr1e-4_s": mustPoint(b, r, "Bloom Join", "0.0001").RuntimeSec,
			"fpr0.01_s": mustPoint(b, r, "Bloom Join", "0.01").RuntimeSec,
			"fpr0.5_s":  mustPoint(b, r, "Bloom Join", "0.5").RuntimeSec,
		}
	})
}

func BenchmarkFig5GroupByGroups(b *testing.B) {
	benchFigure(b, harness.RunFig5, func(r *harness.Result) map[string]float64 {
		return map[string]float64{
			"s3side_2g_s":    mustPoint(b, r, "S3-Side Group-By", "2").RuntimeSec,
			"s3side_32g_s":   mustPoint(b, r, "S3-Side Group-By", "32").RuntimeSec,
			"filtered_32g_s": mustPoint(b, r, "Filtered Group-By", "32").RuntimeSec,
		}
	})
}

func BenchmarkFig6HybridSplit(b *testing.B) {
	benchFigure(b, harness.RunFig6, func(r *harness.Result) map[string]float64 {
		p8 := mustPoint(b, r, "Hybrid Group-By", "8")
		return map[string]float64{
			"s3_sec_at8":     p8.Extra["s3SideSec"],
			"server_sec_at8": p8.Extra["serverSideSec"],
		}
	})
}

func BenchmarkFig7GroupBySkew(b *testing.B) {
	benchFigure(b, harness.RunFig7, func(r *harness.Result) map[string]float64 {
		hy := mustPoint(b, r, "Hybrid Group-By", "1.3")
		fi := mustPoint(b, r, "Filtered Group-By", "1.3")
		return map[string]float64{
			"hybrid_th1.3_s":   hy.RuntimeSec,
			"filtered_th1.3_s": fi.RuntimeSec,
			"improvement_pct":  100 * (fi.RuntimeSec - hy.RuntimeSec) / fi.RuntimeSec,
		}
	})
}

func BenchmarkFig8TopKSampleSize(b *testing.B) {
	benchFigure(b, harness.RunFig8, func(r *harness.Result) map[string]float64 {
		return map[string]float64{
			"traffic_at_Sstar_gb": mustPoint(b, r, "Sampling Top-K", "S*").Extra["returnedGB"],
			"traffic_small_S_gb":  mustPoint(b, r, "Sampling Top-K", "S*/16").Extra["returnedGB"],
		}
	})
}

func BenchmarkFig9TopKSweepK(b *testing.B) {
	benchFigure(b, harness.RunFig9, func(r *harness.Result) map[string]float64 {
		server := mustPoint(b, r, "Server-Side Top-K", "100")
		sampling := mustPoint(b, r, "Sampling Top-K", "100")
		return map[string]float64{
			"server_k100_s":   server.RuntimeSec,
			"sampling_k100_s": sampling.RuntimeSec,
		}
	})
}

func BenchmarkFig10TPCH(b *testing.B) {
	benchFigure(b, harness.RunFig10, func(r *harness.Result) map[string]float64 {
		bg := mustPoint(b, r, "PushdownDB (Baseline)", "Geo-Mean")
		og := mustPoint(b, r, "PushdownDB (Optimized)", "Geo-Mean")
		return map[string]float64{
			"geomean_speedup_x": bg.RuntimeSec / og.RuntimeSec,
			"geomean_cost_rel":  og.Cost.Total() / bg.Cost.Total(),
		}
	})
}

func BenchmarkFig11Formats(b *testing.B) {
	benchFigure(b, harness.RunFig11, func(r *harness.Result) map[string]float64 {
		csv := mustPoint(b, r, "CSV 20-col", "0.01")
		col := mustPoint(b, r, "Parquet 20-col", "0.01")
		return map[string]float64{
			"csv20_sel0.01_s":     csv.RuntimeSec,
			"parquet20_sel0.01_s": col.RuntimeSec,
		}
	})
}

// Ablations of the paper's Section-X suggestions.

func BenchmarkAblationMultiRangeGET(b *testing.B) {
	benchFigure(b, harness.RunFig1MultiRange, func(r *harness.Result) map[string]float64 {
		per := mustPoint(b, r, "Per-Row GETs", "1e-02")
		multi := mustPoint(b, r, "Multi-Range GET", "1e-02")
		return map[string]float64{
			"per_row_s":    per.RuntimeSec,
			"multirange_s": multi.RuntimeSec,
		}
	})
}

func BenchmarkAblationBitwiseBloom(b *testing.B) {
	benchFigure(b, harness.RunFig4Bitwise, func(r *harness.Result) map[string]float64 {
		s := mustPoint(b, r, "String Bloom", "0.0001")
		bw := mustPoint(b, r, "Bitwise Bloom", "0.0001")
		return map[string]float64{"string_s": s.RuntimeSec, "bitwise_s": bw.RuntimeSec}
	})
}

func BenchmarkAblationPartialGroupBy(b *testing.B) {
	benchFigure(b, harness.RunFig6PartialGroupBy, func(r *harness.Result) map[string]float64 {
		c := mustPoint(b, r, "CASE Encoding", "8")
		p := mustPoint(b, r, "Partial Group-By", "8")
		return map[string]float64{"case_s": c.RuntimeSec, "partial_s": p.RuntimeSec}
	})
}
