// Sampling top-K walkthrough (paper Section VII): find the K cheapest
// lineitems with the server-side baseline and with the two-phase sampling
// algorithm, sweeping the sample size around the analytic optimum
// S* = sqrt(K*N/alpha) to show the U-shaped data-traffic curve.
package main

import (
	"context"
	"fmt"
	"log"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/tpch"
)

func main() {
	ctx := context.Background()
	st := store.New()
	ds, err := tpch.Load(ctx, st, tpch.Dataset{SF: 0.005, Seed: 1, Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}
	db, err := engine.Open(ds.Bucket,
		engine.WithBackend("s3sim", s3api.NewInProc(st)),
		engine.WithScale(cloudsim.Scale{DataRatio: 10 / 0.005, PartRatio: 32.0 / 4}))
	if err != nil {
		log.Fatal(err)
	}

	const k = 40
	n := int64(tpch.SizesFor(0.005).Orders) * 4 // ~4 lineitems per order
	sStar := engine.OptimalSampleSize(k, n, 0.1)
	fmt.Printf("K=%d over ~%d rows; the Section VII-B model gives S* = %d\n\n", k, n, sStar)

	e0 := db.NewExec()
	server, err := e0.ServerSideTopK("lineitem", "l_extendedprice", k, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server-side top-K: runtime %.1fs, cost %s\n\n", e0.RuntimeSeconds(), e0.Cost())

	fmt.Printf("%-10s %12s %12s %14s\n", "sample S", "runtime(s)", "traffic(KB)", "matches base?")
	for _, s := range []int64{sStar / 8, sStar / 2, sStar, sStar * 4, sStar * 16} {
		if s <= k {
			s = k + 1
		}
		e := db.NewExec()
		got, err := e.SamplingTopK("lineitem", "l_extendedprice", k, true,
			engine.SamplingTopKOptions{SampleSize: s})
		if err != nil {
			log.Fatal(err)
		}
		same := "yes"
		vi := server.ColIndex("l_extendedprice")
		for i := range server.Rows {
			a, _ := server.Rows[i][vi].Num()
			b, _ := got.Rows[i][vi].Num()
			if a != b {
				same = "NO"
			}
		}
		_, _, returned, gets := e.Metrics.Totals()
		fmt.Printf("%-10d %12.1f %12.1f %14s\n",
			s, e.RuntimeSeconds(), float64(returned+gets)/1e3, same)
	}
	fmt.Println("\ntraffic is minimized near S*, exactly as the paper's Fig. 8 shows")
}
