// Serverclient: a pushdownd server and its Go client in one process. The
// server wraps one shared engine — result cache on, per-tenant metering —
// behind HTTP; the client runs a join through the wire twice and prints
// what the second, cache-warm run no longer pays for. Finally /stats shows
// the per-tenant bill the server kept while doing it.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/server"
	"pushdowndb/internal/store"
)

func main() {
	ctx := context.Background()

	// A small shop dataset on simulated in-region S3.
	st := store.New()
	s3 := s3api.NewInProc(st)
	custHeader := []string{"ck", "name", "bal"}
	custRows := [][]string{
		{"1", "ada", "-600"}, {"2", "grace", "120"},
		{"3", "edsger", "-800"}, {"4", "barbara", "45"},
	}
	ordHeader := []string{"ok", "ck", "price"}
	ordRows := [][]string{
		{"100", "1", "9.50"}, {"101", "1", "12.00"},
		{"102", "2", "3.25"}, {"103", "3", "8.75"},
		{"104", "3", "1.10"}, {"105", "4", "2.20"},
	}
	if err := engine.PartitionTableTo(ctx, s3, "shop", "customers", custHeader, custRows, 2); err != nil {
		log.Fatal(err)
	}
	if err := engine.PartitionTableTo(ctx, s3, "shop", "orders", ordHeader, ordRows, 2); err != nil {
		log.Fatal(err)
	}

	// One engine, shared by every client the server admits.
	db, err := engine.Open("shop",
		engine.WithBackend("s3", s3),
		engine.WithResultCache(16<<20),
	)
	if err != nil {
		log.Fatal(err)
	}

	srv := server.New(db, server.Config{
		MaxClients:     4,
		RequestTimeout: 10 * time.Second,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() {
		sh, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sh)
	}()

	cl := server.NewClient("http://" + l.Addr().String())
	cl.Tenant = "ada"
	const sql = "SELECT c.name, SUM(o.price) AS spent " +
		"FROM customers c JOIN orders o ON c.ck = o.ck " +
		"WHERE c.bal < 0 GROUP BY c.name ORDER BY spent DESC"

	cold, err := cl.Query(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result (over the wire, decoded to engine values):")
	fmt.Print(cold.Relation)
	fmt.Printf("\ncold: runtime %.4fs, cost $%.8f, %d storage requests\n",
		cold.RuntimeSec, cold.Cost.Total(), cold.Requests)

	warm, err := cl.Query(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm: runtime %.4fs, cost $%.8f, %d storage requests\n",
		warm.RuntimeSec, warm.Cost.Total(), warm.Requests)
	if warm.Relation.String() != cold.Relation.String() {
		log.Fatal("warm result diverged from cold")
	}

	// A filtered scan is always select-based, so its repeat comes straight
	// from the shared result cache — zero storage requests.
	const scan = "SELECT name, bal FROM customers WHERE bal < 100 ORDER BY name"
	if _, err := cl.Query(ctx, scan); err != nil {
		log.Fatal(err)
	}
	rerun, err := cl.Query(ctx, scan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscan repeat: %d storage request(s), %d cache hit(s)\n",
		rerun.Requests, rerun.CacheHits)

	st2, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	ten := st2.Tenants["ada"]
	fmt.Printf("server bill for tenant ada: %d queries, $%.8f total\n", ten.Queries, ten.TotalUSD)
	if st2.Cache != nil {
		fmt.Printf("shared cache: %d hits, %.0f%% hit rate\n", st2.Cache.Hits, 100*st2.Cache.HitRate)
	}
}
