// Indexscan: build an S3-side secondary index on a partitioned table with
// CREATE INDEX, then watch the planner's access path flip between the
// IndexScan (probe the sorted index objects, fetch only the matching byte
// ranges with batched multi-range GETs) and the plain pushed scan as the
// predicate's selectivity loosens — the paper's Section IV-A crossover.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

func main() {
	ctx := context.Background()

	// 1. A simulated S3 store with one wide partitioned table: 4000 rows,
	// v uniformly scattered in [0, 400), plus a fat payload column so the
	// index objects are much narrower than the data.
	st := store.New()
	pad := strings.Repeat("#", 48)
	var rows [][]string
	for i := 0; i < 4000; i++ {
		rows = append(rows, []string{fmt.Sprint(i), fmt.Sprint(i % 400), pad})
	}
	if err := engine.PartitionTable(ctx, st, "demo", "events", []string{"k", "v", "payload"}, rows, 4); err != nil {
		log.Fatal(err)
	}

	// 2. Open the DB at a simulation scale where storage dollars dominate
	// request round trips (the regime the paper measures).
	db, err := engine.Open("demo",
		engine.WithBackend("s3sim", s3api.NewInProc(st)),
		engine.WithScale(cloudsim.Scale{DataRatio: 20000, PartRatio: 8}))
	if err != nil {
		log.Fatal(err)
	}

	// 3. CREATE INDEX scans each partition once and writes value-sorted
	// <value, first_byte, last_byte> index objects next to the data, plus
	// a manifest so any later DB rediscovers the index from storage alone.
	if _, _, err := db.ExecStatement(ctx, "CREATE INDEX ix_v ON events (v)"); err != nil {
		log.Fatal(err)
	}
	for _, e := range db.Indexes(ctx, "events") {
		fmt.Printf("index %s on events(%s): %d partitions, %d bytes\n\n",
			e.Name, e.Column, e.Partitions, e.IndexBytes)
	}

	// 4. A selective equality flips to the IndexScan access path; an
	// unselective range stays a pushed scan. Explain shows the three-way
	// estimate that drove each choice.
	for _, sql := range []string{
		"SELECT k FROM events WHERE v = 123",
		"SELECT COUNT(*) AS n FROM events WHERE v >= 8",
	} {
		plan, err := db.Explain(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n%s", sql, plan)
		rel, e, err := db.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		ap := e.Access()
		fmt.Printf("ran as %s (%d multi-range GETs), %d rows, runtime %.3fs, cost %s\n\n",
			ap.Strategy, ap.RangedGets, len(rel.Rows), e.RuntimeSeconds(), e.Cost())
	}
}
