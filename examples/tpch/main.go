// TPC-H walkthrough: run the paper's six queries (Q1, Q3, Q6, Q14, Q17,
// Q19) in both baseline and optimized form over a generated dataset and
// print the Fig.-10-style comparison, verifying both plans agree on the
// answers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.005, "generated TPC-H scale factor")
	flag.Parse()

	ctx := context.Background()
	st := store.New()
	ds, err := tpch.Load(ctx, st, tpch.Dataset{SF: *sf, Seed: 42, Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}
	db, err := engine.Open(ds.Bucket,
		engine.WithBackend("s3sim", s3api.NewInProc(st)),
		engine.WithScale(cloudsim.Scale{DataRatio: 10 / *sf, PartRatio: 32.0 / 4}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TPC-H at generated SF %g, virtual clock reporting at SF 10\n\n", *sf)
	fmt.Printf("%-6s %14s %14s %9s %12s %12s\n",
		"query", "baseline(s)", "optimized(s)", "speedup", "base cost", "opt cost")
	for _, q := range tpch.Queries() {
		baseRel, be, err := q.Baseline(db)
		if err != nil {
			log.Fatalf("%s baseline: %v", q.Name, err)
		}
		optRel, oe, err := q.Optimized(db)
		if err != nil {
			log.Fatalf("%s optimized: %v", q.Name, err)
		}
		if len(baseRel.Rows) != len(optRel.Rows) {
			log.Fatalf("%s: plans disagree (%d vs %d rows)", q.Name, len(baseRel.Rows), len(optRel.Rows))
		}
		fmt.Printf("%-6s %14.1f %14.1f %8.1fx %12.5f %12.5f\n",
			q.Name, be.RuntimeSeconds(), oe.RuntimeSeconds(),
			be.RuntimeSeconds()/oe.RuntimeSeconds(),
			be.Cost().Total(), oe.Cost().Total())
	}

	// Show one actual result set.
	rel, _, err := tpch.Q1Optimized(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ1 (pricing summary) result:")
	fmt.Print(rel)
}
