// Quickstart: stand up a simulated S3 store, load a small CSV table, and
// run queries through PushdownDB — first with everything pulled to the
// server (the baseline), then with the filter pushed into S3 Select —
// and compare what each approach moved over the network and what it would
// have cost on AWS.
package main

import (
	"context"
	"fmt"
	"log"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

func main() {
	// 1. A simulated S3 store with one partitioned table.
	ctx := context.Background()
	st := store.New()
	header := []string{"id", "city", "temp_c"}
	rows := [][]string{
		{"1", "madison", "-8.5"},
		{"2", "boston", "-2.0"},
		{"3", "doha", "31.5"},
		{"4", "amherst", "-4.25"},
		{"5", "cambridge", "-1.75"},
		{"6", "san-francisco", "14.0"},
	}
	if err := engine.PartitionTable(ctx, st, "weather", "readings", header, rows, 2); err != nil {
		log.Fatal(err)
	}

	// 2. Open PushdownDB with the in-process backend over the store (the
	// backend simulates in-region S3 and advertises its own capability and
	// cost profile).
	db, err := engine.Open("weather",
		engine.WithBackend("s3sim", s3api.NewInProc(st)))
	if err != nil {
		log.Fatal(err)
	}

	// 3a. Baseline: load the entire table, filter on the server.
	e1 := db.NewExec()
	cold, err := e1.ServerSideFilter("readings", "temp_c < 0", "city, temp_c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server-side filter (baseline):")
	fmt.Print(cold)
	_, _, _, loaded := e1.Metrics.Totals()
	fmt.Printf("bytes pulled from storage: %d\n\n", loaded)

	// 3b. Pushdown: S3 Select evaluates the predicate at the storage side.
	e2 := db.NewExec()
	cold2, err := e2.S3SideFilter("readings", "temp_c < 0", "city, temp_c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("s3-side filter (pushdown):")
	fmt.Print(cold2)
	_, scanned, returned, _ := e2.Metrics.Totals()
	fmt.Printf("bytes scanned in storage: %d, returned to server: %d\n\n", scanned, returned)

	// 4. Or just use SQL — selection and projection are pushed
	// automatically, grouping runs on the server.
	rel, e3, err := db.Query(
		"SELECT city, temp_c FROM readings WHERE temp_c < 0 ORDER BY temp_c LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL front end:")
	fmt.Print(rel)
	fmt.Printf("virtual runtime %.4fs, AWS-equivalent cost %s\n", e3.RuntimeSeconds(), e3.Cost())
}
