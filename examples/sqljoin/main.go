// SQL join walkthrough: the paper's Listing-2 query written as plain SQL
// and executed through the cost-based join planner —
//
//	SELECT SUM(o.o_totalprice) AS total, COUNT(*) AS n
//	FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey
//	WHERE c.c_acctbal <= -950
//
// The planner probes each table with a pushed-down COUNT(*), prices the
// baseline join against the Bloom join with the cloudsim cost model, and
// runs the winner. The program prints the plan tree (what -explain shows
// in cmd/pushdownsql), then the result with its virtual runtime and cost.
package main

import (
	"context"
	"fmt"
	"log"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/tpch"
)

func main() {
	ctx := context.Background()
	st := store.New()
	ds, err := tpch.Load(ctx, st, tpch.Dataset{SF: 0.005, Seed: 1, Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}
	// Report virtual time as if this were the paper's SF-10 dataset on a
	// 32-way partitioned layout.
	db, err := engine.Open(ds.Bucket,
		engine.WithBackend("s3sim", s3api.NewInProc(st)),
		engine.WithScale(cloudsim.Scale{DataRatio: 10 / 0.005, PartRatio: 32.0 / 4}))
	if err != nil {
		log.Fatal(err)
	}

	const sql = "SELECT SUM(o.o_totalprice) AS total, COUNT(*) AS n " +
		"FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey " +
		"WHERE c.c_acctbal <= -950"

	fmt.Println(sql)
	fmt.Println()

	plan, _, err := db.Plan(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	rel, e, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	step := e.QueryPlan().Steps[0]
	fmt.Printf("\nchosen strategy: %s (%s)\n", step.Strategy, step.Reason)
	fmt.Printf("total=%v rows=%v\n", rel.Rows[0][0], rel.Rows[0][1])
	fmt.Printf("virtual runtime: %.2fs   cost: %s\n", e.RuntimeSeconds(), e.Cost())
}
