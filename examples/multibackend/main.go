// Multibackend: one query, two storage tiers. The customers table lives
// on a localfs backend (objects on disk, free and fast), while the orders
// table lives on a simulated in-region S3 backend; a table→backend
// catalog routes each scan. The planner prices every join strategy with
// the profile each backend advertises — run it and watch the explain
// output attribute scans to their backends — and the per-phase cost
// accounting bills each side at its own tier's rates.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/localfs"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

func main() {
	ctx := context.Background()

	// Tier 1: customers on the local filesystem.
	dir, err := os.MkdirTemp("", "pushdowndb-multibackend-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	local := localfs.New(dir)
	custHeader := []string{"ck", "name", "bal"}
	custRows := [][]string{
		{"1", "ada", "-600"},
		{"2", "grace", "120"},
		{"3", "edsger", "-800"},
		{"4", "barbara", "45"},
	}
	if err := engine.PartitionTableTo(ctx, local, "shop", "customers", custHeader, custRows, 2); err != nil {
		log.Fatal(err)
	}

	// Tier 2: orders on simulated in-region S3.
	st := store.New()
	s3 := s3api.NewInProc(st)
	ordHeader := []string{"ok", "ck", "price"}
	ordRows := [][]string{
		{"100", "1", "9.50"}, {"101", "1", "12.00"},
		{"102", "2", "3.25"}, {"103", "3", "8.75"},
		{"104", "3", "1.10"}, {"105", "4", "2.20"},
	}
	if err := engine.PartitionTableTo(ctx, s3, "shop", "orders", ordHeader, ordRows, 2); err != nil {
		log.Fatal(err)
	}

	// One DB over both tiers: the catalog says where each table lives.
	db, err := engine.Open("shop",
		engine.WithBackend("disk", local),
		engine.WithBackend("s3", s3),
		engine.WithTableBackend("customers", "disk"),
		engine.WithTableBackend("orders", "s3"),
		engine.WithDefaultBackend("s3"),
	)
	if err != nil {
		log.Fatal(err)
	}

	const sql = "SELECT c.name, SUM(o.price) AS spent " +
		"FROM customers c JOIN orders o ON c.ck = o.ck " +
		"WHERE c.bal < 0 GROUP BY c.name ORDER BY spent DESC"

	plan, err := db.Explain(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan (note the per-backend scan attribution):")
	fmt.Print(plan)

	rel, e, err := db.QueryContext(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresult:")
	fmt.Print(rel)
	fmt.Printf("\nvirtual runtime %.4fs, cost %s\n", e.RuntimeSeconds(), e.Cost())
	fmt.Println("(the localfs side bills nothing; every S3-side request, scan and byte is priced)")
}
