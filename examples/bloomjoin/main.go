// Bloom join walkthrough: the paper's Listing-2 query —
//
//	SELECT SUM(o_totalprice) FROM customer, orders
//	WHERE o_custkey = c_custkey AND c_acctbal <= -950
//
// executed three ways (baseline, filtered, Bloom join) over a generated
// TPC-H dataset, reporting paper-scale virtual runtime and AWS cost for
// each, plus the Bloom filter's S3 Select predicate itself.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pushdowndb/internal/bloom"
	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/tpch"
)

func main() {
	ctx := context.Background()
	st := store.New()
	ds, err := tpch.Load(ctx, st, tpch.Dataset{SF: 0.005, Seed: 1, Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}
	// Report virtual time as if this were the paper's SF-10 dataset on a
	// 32-way partitioned layout.
	db, err := engine.Open(ds.Bucket,
		engine.WithBackend("s3sim", s3api.NewInProc(st)),
		engine.WithScale(cloudsim.Scale{DataRatio: 10 / 0.005, PartRatio: 32.0 / 4}))
	if err != nil {
		log.Fatal(err)
	}

	spec := engine.JoinSpec{
		LeftTable: "customer", RightTable: "orders",
		LeftKey: "c_custkey", RightKey: "o_custkey",
		LeftFilter:  "c_acctbal <= -950",
		LeftProject: []string{"c_custkey"},
		TargetFPR:   0.01,
		Seed:        7,
	}

	fmt.Println("SELECT SUM(o_totalprice) FROM customer, orders")
	fmt.Println("WHERE o_custkey = c_custkey AND c_acctbal <= -950")
	fmt.Println()
	for _, algo := range []string{"baseline", "filtered", "bloom"} {
		e := db.NewExec()
		rel, err := e.JoinAggregate(spec, algo, "SUM(o_totalprice) AS total, COUNT(*) AS n")
		if err != nil {
			log.Fatal(err)
		}
		_, _, returned, got := e.Metrics.Totals()
		fmt.Printf("%-9s total=%-14v rows=%-6v runtime=%6.2fs  moved=%8.1fKB  cost=%s\n",
			algo, rel.Rows[0][0], rel.Rows[0][1],
			e.RuntimeSeconds(), float64(returned+got)/1e3, e.Cost())
	}

	// What the shipped predicate looks like (paper Listing 1).
	f := bloom.New(8, 0.05, rand.New(rand.NewSource(1)))
	for _, k := range []int64{3, 17, 42} {
		f.Add(k)
	}
	fmt.Println("\nexample S3 Select Bloom predicate for keys {3, 17, 42}:")
	fmt.Println("  WHERE " + f.SQLPredicate("o_custkey"))
}
